module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate

let fig5 () =
  let t = Netlist.create ~name:"fig5" () in
  let a = Netlist.add_input ~name:"a" t in
  let b = Netlist.add_input ~name:"b" t in
  let c = Netlist.add_input ~name:"c" t in
  let d = Netlist.add_input ~name:"d" t in
  let ab = Netlist.add_gate ~name:"ab" t (Gate.Or [| a; b |]) in
  let cd = Netlist.add_gate ~name:"cd" t (Gate.And [| c; d |]) in
  let prod = Netlist.add_gate ~name:"prod" t (Gate.And [| ab; cd |]) in
  let f = Netlist.add_gate ~name:"f" t (Gate.Not prod) in
  let g = Netlist.add_gate ~name:"g" t (Gate.Or [| ab; cd |]) in
  Netlist.add_output t "f" f;
  Netlist.add_output t "g" g;
  t

let fig10 () =
  let t = Netlist.create ~name:"fig10" () in
  let x = Array.init 5 (fun k -> Netlist.add_input ~name:(Printf.sprintf "x%d" (k + 1)) t) in
  let p = Netlist.add_gate ~name:"P" t (Gate.And [| x.(0); x.(1); x.(2) |]) in
  let q = Netlist.add_gate ~name:"Q" t (Gate.And [| x.(2); x.(3) |]) in
  let r = Netlist.add_gate ~name:"R" t (Gate.Or [| p; q; x.(4) |]) in
  Netlist.add_output t "P" p;
  Netlist.add_output t "Q" q;
  Netlist.add_output t "R" r;
  t

let fig9_sgraph () =
  let g = Dpa_seq.Sgraph.create 5 in
  (* indices: A=0, B=1, C=2, D=3, E=4 *)
  let abe = [ 0; 1; 4 ] and cd = [ 2; 3 ] in
  List.iter (fun u -> List.iter (fun v -> Dpa_seq.Sgraph.add_edge g u v) cd) abe;
  List.iter (fun u -> List.iter (fun v -> Dpa_seq.Sgraph.add_edge g u v) abe) cd;
  g

let decoder ~bits =
  if bits < 1 || bits > 8 then invalid_arg "Examples.decoder: bits must be in [1, 8]";
  let t = Netlist.create ~name:(Printf.sprintf "decode%d" bits) () in
  let addr = Array.init bits (fun k -> Netlist.add_input ~name:(Printf.sprintf "a%d" k) t) in
  let naddr = Array.map (fun a -> Netlist.add_gate t (Gate.Not a)) addr in
  for m = 0 to (1 lsl bits) - 1 do
    let literals =
      Array.init bits (fun k -> if (m lsr k) land 1 = 1 then addr.(k) else naddr.(k))
    in
    let term =
      if bits = 1 then literals.(0) else Netlist.add_gate t (Gate.And literals)
    in
    Netlist.add_output t (Printf.sprintf "y%d" m) term
  done;
  t

let priority_arbiter ~width =
  if width < 2 then invalid_arg "Examples.priority_arbiter: width must be at least 2";
  let t = Netlist.create ~name:(Printf.sprintf "arb%d" width) () in
  let req =
    Array.init width (fun k -> Netlist.add_input ~name:(Printf.sprintf "req%d" k) t)
  in
  let nreq = Array.map (fun r -> Netlist.add_gate t (Gate.Not r)) req in
  Netlist.add_output t "gnt0" req.(0);
  for k = 1 to width - 1 do
    let blockers = Array.init k (fun j -> nreq.(j)) in
    let gnt = Netlist.add_gate t (Gate.And (Array.append [| req.(k) |] blockers)) in
    Netlist.add_output t (Printf.sprintf "gnt%d" k) gnt
  done;
  Netlist.add_output t "busy" (Netlist.add_gate t (Gate.Or req));
  t

let carry_chain ~width =
  if width < 1 then invalid_arg "Examples.carry_chain: width must be at least 1";
  let t = Netlist.create ~name:(Printf.sprintf "cla%d" width) () in
  let a = Array.init width (fun k -> Netlist.add_input ~name:(Printf.sprintf "a%d" k) t) in
  let b = Array.init width (fun k -> Netlist.add_input ~name:(Printf.sprintf "b%d" k) t) in
  let cin = Netlist.add_input ~name:"cin" t in
  let carry = ref cin in
  for k = 0 to width - 1 do
    let g = Netlist.add_gate ~name:(Printf.sprintf "g%d" k) t (Gate.And [| a.(k); b.(k) |]) in
    let p = Netlist.add_gate ~name:(Printf.sprintf "p%d" k) t (Gate.Xor (a.(k), b.(k))) in
    let sum = Netlist.add_gate t (Gate.Xor (p, !carry)) in
    Netlist.add_output t (Printf.sprintf "s%d" k) sum;
    let pc = Netlist.add_gate t (Gate.And [| p; !carry |]) in
    carry := Netlist.add_gate t (Gate.Or [| g; pc |])
  done;
  Netlist.add_output t "cout" !carry;
  t

let ring_counter ~n =
  if n < 2 then invalid_arg "Examples.ring_counter: need at least 2 stages";
  let t = Netlist.create ~name:(Printf.sprintf "ring%d" n) () in
  let en = Netlist.add_input ~name:"en" t in
  let q = Array.init n (fun k -> Netlist.add_input ~name:(Printf.sprintf "q%d" k) t) in
  let gated = Netlist.add_gate ~name:"gated" t (Gate.And [| q.(n - 1); en |]) in
  Netlist.add_output t "head" q.(0);
  let ffs =
    Array.init n (fun k ->
        if k = 0 then { Dpa_seq.Seq_netlist.data = gated; init = true }
        else { Dpa_seq.Seq_netlist.data = q.(k - 1); init = false })
  in
  Dpa_seq.Seq_netlist.create ~comb:t ~n_real_inputs:1 ~ffs

let replicated_bank_ring ~banks ~width =
  if banks < 2 || width < 1 then
    invalid_arg "Examples.replicated_bank_ring: need banks >= 2 and width >= 1";
  let t = Netlist.create ~name:(Printf.sprintf "bankring%dx%d" banks width) () in
  let en = Netlist.add_input ~name:"en" t in
  let qs =
    Array.init banks (fun b ->
        Array.init width (fun k ->
            Netlist.add_input ~name:(Printf.sprintf "q%d_%d" b k) t))
  in
  (* one OR gate consolidates each bank; the next bank's flip-flops all
     latch the same gated copy of it *)
  let bank_out = Array.map (fun bank -> Netlist.add_gate t (Gate.Or bank)) qs in
  let data =
    Array.init banks (fun b ->
        let prev = bank_out.((b + banks - 1) mod banks) in
        Netlist.add_gate t (Gate.And [| prev; en |]))
  in
  Netlist.add_output t "ring" bank_out.(0);
  let ffs =
    Array.init (banks * width) (fun i ->
        let b = i / width in
        { Dpa_seq.Seq_netlist.data = data.(b); init = b = 0 })
  in
  Dpa_seq.Seq_netlist.create ~comb:t ~n_real_inputs:1 ~ffs

let fig7_sequential () =
  let t = Netlist.create ~name:"fig7" () in
  let x = Netlist.add_input ~name:"x" t in
  let q0 = Netlist.add_input ~name:"q0" t in
  let q1 = Netlist.add_input ~name:"q1" t in
  let q2 = Netlist.add_input ~name:"q2" t in
  let nx = Netlist.add_gate ~name:"nx" t (Gate.Not x) in
  let d0 = Netlist.add_gate ~name:"d0" t (Gate.And [| q1; x |]) in
  let d1 = Netlist.add_gate ~name:"d1" t (Gate.Or [| q0; q2 |]) in
  let d2 = Netlist.add_gate ~name:"d2" t (Gate.And [| q1; nx |]) in
  let y = Netlist.add_gate ~name:"y" t (Gate.Or [| d0; d2 |]) in
  Netlist.add_output t "y" y;
  (* ff1 starts hot so the coupled loops oscillate instead of settling in
     the dead all-zero state: q1 is high on alternate cycles (P = 1/2) and
     q0/q2 follow with P = 1/4 each *)
  let ffs =
    [| { Dpa_seq.Seq_netlist.data = d0; init = false };
       { Dpa_seq.Seq_netlist.data = d1; init = true };
       { Dpa_seq.Seq_netlist.data = d2; init = false } |]
  in
  Dpa_seq.Seq_netlist.create ~comb:t ~n_real_inputs:1 ~ffs
