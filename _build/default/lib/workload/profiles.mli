(** Named benchmark profiles mirroring the paper's Tables 1–2 circuits.

    Each profile fixes the published primary-input/output counts and
    targets a similar logic volume; the circuits themselves are synthetic
    (see {!Generator} and DESIGN.md §3 on benchmark substitution).
    [pair_limit] caps the greedy candidate set on the very wide industry
    blocks (an engineering knob; [None] = the paper's full pair set). *)

type t = {
  params : Generator.params;
  description : string;  (** the paper's "Desc." column *)
  pair_limit : int option;
  timed : bool;  (** appears in Table 2 *)
}

val table1 : t list
(** Industry 1–3, apex7, frg1, x1, x3 — the Table 1 row set, in order. *)

val table2 : t list
(** apex7, frg1, x1, x3 — the Table 2 row set. *)

val find : string -> t option
(** Case-insensitive lookup by profile name. *)

val names : string list
