(** The paper's worked examples, reconstructed as concrete circuits.

    The Fig. 3/5 functions are recovered from the printed switching
    numbers: with input probability 0.9, realization 1's domino block
    totals 3.6 (= .99 + .81 + .8019 + .9981) with an output inverter at
    .8019, and realization 2 totals .40 (= .01 + .19 + .1981 + .0019) with
    an output inverter at .0019 and four input inverters at .18 — which
    pins the functions to [f = ¬((a+b)·(c·d))] and [g = (a+b)+(c·d)].

    The Fig. 10 circuit is pinned the same way by its BDD node counts
    (7 / 11 / 9 under the three variable orders) to [P = x1·x2·x3],
    [Q = x3·x4], [R = P + Q + x5]. *)

val fig5 : unit -> Dpa_logic.Netlist.t
(** Inputs [a b c d]; outputs [f] then [g]. Realization 1 of Fig. 5 is
    the phase assignment [f: Negative, g: Positive]; realization 2 is
    [f: Positive, g: Negative]. *)

val fig10 : unit -> Dpa_logic.Netlist.t
(** Inputs [x1 … x5]; outputs [P], [Q], [R] in order. *)

val fig9_sgraph : unit -> Dpa_seq.Sgraph.t
(** The strongly connected 5-vertex s-graph of Fig. 9: vertices
    [A B C D E] (indices 0–4) where [{A,B,E}] share fanins/fanouts
    [{C,D}] and vice versa, so symmetrization forms supervertices
    [ABE] (weight 3) and [CD] (weight 2). *)

val decoder : bits:int -> Dpa_logic.Netlist.t
(** A full [bits → 2^bits] address decoder — the canonical domino
    workload: wide AND terms over both input polarities, one-hot outputs
    with signal probability [2^-bits] each. Raises beyond 8 bits. *)

val priority_arbiter : width:int -> Dpa_logic.Netlist.t
(** Fixed-priority arbiter: [grant_i = req_i ∧ ¬req_{i-1} ∧ … ∧ ¬req_0],
    plus a [busy] output ORing all requests. AND-chains deepen with the
    index, giving strongly skewed per-output cone statistics. *)

val carry_chain : width:int -> Dpa_logic.Netlist.t
(** Ripple carry-lookahead slice: per-bit generate/propagate feeding a
    carry chain [c_{i+1} = g_i ∨ (p_i ∧ c_i)], outputs the sum bits and
    the final carry — deep reconvergent cones over shared
    generate/propagate terms. Inputs: [a0…], [b0…], [cin]. *)

val ring_counter : n:int -> Dpa_seq.Seq_netlist.t
(** A one-hot ring of [n] flip-flops with an enable input — a minimal
    sequential circuit whose s-graph is a single cycle (MFVS size 1). *)

val replicated_bank_ring : banks:int -> width:int -> Dpa_seq.Seq_netlist.t
(** A ring of [banks] register banks, each holding [width] flip-flops that
    latch the {e same} duplicated next-state function and feed the {e
    same} downstream gate — the structure domino duplication creates
    (paper §4.2.1). Every bank's flip-flops share fanins and fanouts, so
    the symmetry transformation collapses each bank into one weight-
    [width] supervertex; classical vertex-at-a-time greedy tends to
    scatter its picks across banks instead. *)

val fig7_sequential : unit -> Dpa_seq.Seq_netlist.t
(** A small multi-loop sequential circuit in the spirit of Fig. 7: one
    flip-flop lies on every cycle, so the ideal partition cuts a single
    point and the combinational block keeps few pseudo-inputs. *)
