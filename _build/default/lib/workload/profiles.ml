type t = {
  params : Generator.params;
  description : string;
  pair_limit : int option;
  timed : bool;
}

(* Control-logic house style: OR-leaning gate mix and sparse internal
   inverters keep cone signal probabilities skewed away from ½ (so phase
   choice matters), while pool reuse couples neighbouring cones (so
   conflicting phases pay real duplication) — the two forces the paper's
   heuristic trades off. *)
let control ~name ~seed ~n_inputs ~n_outputs ~support ~gates_per_output ?(and_bias = 0.35)
    ?(bias_spread = 0.0) ?(inverter_prob = 0.12) ?(reuse_fraction = 0.45) ?(max_fanin = 4) () =
  {
    Generator.name;
    seed;
    n_inputs;
    n_outputs;
    support;
    gates_per_output;
    max_fanin;
    and_bias;
    bias_spread;
    inverter_prob;
    reuse_fraction;
  }

(* PI/PO counts follow the paper's Table 1; gate budgets are calibrated so
   the minimum-area realization lands near the published MA cell counts. *)
let industry1 =
  {
    params =
      control ~name:"industry1" ~seed:101 ~n_inputs:127 ~n_outputs:122 ~support:11
        ~gates_per_output:11 ();
    description = "Control Logic";
    pair_limit = Some 1200;
    timed = false;
  }

let industry2 =
  {
    params =
      control ~name:"industry2" ~seed:102 ~n_inputs:97 ~n_outputs:86 ~support:12
        ~gates_per_output:19 ();
    description = "Control Logic";
    pair_limit = Some 1200;
    timed = false;
  }

let industry3 =
  {
    params =
      control ~name:"industry3" ~seed:103 ~n_inputs:117 ~n_outputs:199 ~support:10
        ~gates_per_output:7 ();
    description = "Control Logic";
    pair_limit = Some 1500;
    timed = false;
  }

let apex7 =
  {
    params =
      control ~name:"apex7" ~seed:107 ~n_inputs:79 ~n_outputs:36 ~support:11
        ~gates_per_output:8 ();
    description = "Public Domain";
    pair_limit = None;
    timed = true;
  }

let frg1 =
  {
    params =
      control ~name:"frg1" ~seed:111 ~n_inputs:31 ~n_outputs:3 ~support:13
        ~gates_per_output:33 ~and_bias:0.50 ~bias_spread:0.30 ~inverter_prob:0.0
        ~reuse_fraction:0.70 ();
    description = "Public Domain";
    pair_limit = None;
    timed = true;
  }

let x1 =
  {
    params =
      control ~name:"x1" ~seed:113 ~n_inputs:87 ~n_outputs:28 ~support:11
        ~gates_per_output:9 ();
    description = "Public Domain";
    pair_limit = None;
    timed = true;
  }

let x3 =
  {
    params =
      control ~name:"x3" ~seed:117 ~n_inputs:235 ~n_outputs:99 ~support:11
        ~gates_per_output:9 ();
    description = "Public Domain";
    pair_limit = Some 2000;
    timed = true;
  }

let table1 = [ industry1; industry2; industry3; apex7; frg1; x1; x3 ]

let table2 = [ apex7; frg1; x1; x3 ]

let names = List.map (fun t -> t.params.Generator.name) table1

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun t -> String.lowercase_ascii t.params.Generator.name = lower) table1
