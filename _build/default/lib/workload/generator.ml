module Netlist = Dpa_logic.Netlist
module Builder = Dpa_logic.Builder
module Rng = Dpa_util.Rng

type params = {
  name : string;
  seed : int;
  n_inputs : int;
  n_outputs : int;
  support : int;
  gates_per_output : int;
  max_fanin : int;
  and_bias : float;
  bias_spread : float;
  inverter_prob : float;
  reuse_fraction : float;
}

let default =
  {
    name = "synthetic";
    seed = 1;
    n_inputs = 16;
    n_outputs = 4;
    support = 8;
    gates_per_output = 10;
    max_fanin = 3;
    and_bias = 0.5;
    bias_spread = 0.0;
    inverter_prob = 0.25;
    reuse_fraction = 0.3;
  }

let validate p =
  if p.n_inputs < 2 then invalid_arg "Generator: need at least 2 inputs";
  if p.n_outputs < 1 then invalid_arg "Generator: need at least 1 output";
  if p.support < 2 || p.support > p.n_inputs then
    invalid_arg "Generator: support must be in [2, n_inputs]";
  if p.max_fanin < 2 then invalid_arg "Generator: max_fanin must be at least 2";
  if p.gates_per_output < 1 then invalid_arg "Generator: need at least 1 gate per output"

(* Recency-biased index into a pool of [n] candidates: squaring the
   uniform draw favours recently created nodes, which deepens cones. *)
let biased_index rng n =
  let u = Rng.float rng 1.0 in
  let k = int_of_float (u *. u *. float_of_int n) in
  min (n - 1) k

(* The node [id] may have been simplified to something already in use; a
   proper gate output is guaranteed by combining with fresh literals. *)
let is_proper_gate net id =
  match Netlist.gate net id with
  | Dpa_logic.Gate.And _ | Dpa_logic.Gate.Or _ | Dpa_logic.Gate.Not _ -> true
  | Dpa_logic.Gate.Input | Dpa_logic.Gate.Const _ | Dpa_logic.Gate.Buf _
  | Dpa_logic.Gate.Xor _ -> false

let build_into b ~inputs p =
  let rng = Rng.create p.seed in
  (* Shallow gates (created early in the previous cone, near the inputs)
     are the sharing currency between neighbouring outputs: real control
     logic shares decoded product terms, not whole deep subtrees, and deep
     sharing would make every phase flip pay duplication across many
     cones at once. *)
  let prev_shallow = ref [] in
  let window_of j =
    let span = p.n_inputs - p.support in
    let offset = if p.n_outputs <= 1 then 0 else j * span / (p.n_outputs - 1) in
    Array.sub inputs offset p.support
  in
  let outputs = ref [] in
  for j = 0 to p.n_outputs - 1 do
    (* alternating the AND/OR mix across outputs gives neighbouring cones
       opposed probability skews, so the power-optimal phases disagree and
       shared logic gets duplicated — the frg1 signature of the paper *)
    let bias =
      let delta = if j mod 2 = 0 then -.p.bias_spread else p.bias_spread in
      Dpa_util.Stats.clamp ~lo:0.05 ~hi:0.95 (p.and_bias +. delta)
    in
    let gate_of rng operands =
      if Rng.bernoulli rng bias then Builder.and_ b operands else Builder.or_ b operands
    in
    let window = window_of j in
    let shared = Array.of_list !prev_shallow in
    let avail = ref (Array.to_list window) in
    let avail_len = ref (List.length !avail) in
    (* an operand is either a reused subfunction from the previous cone
       (with probability reuse_fraction) or a recency-biased local pick *)
    let pick () =
      if Array.length shared > 0 && Rng.bernoulli rng p.reuse_fraction then
        shared.(Rng.int rng (Array.length shared))
      else begin
        let idx = !avail_len - 1 - biased_index rng !avail_len in
        List.nth !avail idx
      end
    in
    (* Gates created for this output that no later gate has read yet; new
       gates consume from here first so the whole cone stays live (real
       netlists have no dead logic, and dead gates would vanish in the
       technology-independent optimization anyway). *)
    let unused = ref [] in
    let take_operand () =
      match !unused with
      | head :: rest when Rng.bernoulli rng 0.8 ->
        unused := rest;
        head
      | _ :: _ | [] -> pick ()
    in
    let maybe_invert op =
      if Rng.bernoulli rng p.inverter_prob then Builder.not_ b op else op
    in
    (* The structurally hashed builder folds complementary operand pairs to
       constants; retrying with fresh operands keeps the cone alive
       instead of letting an absorbed constant swallow it. *)
    let non_constant_gate () =
      let net = Builder.finish b in
      let rec attempt tries =
        let width = 2 + Rng.int rng (p.max_fanin - 1) in
        let operands = List.init width (fun _ -> maybe_invert (take_operand ())) in
        let id = gate_of rng operands in
        match Netlist.gate net id with
        | Dpa_logic.Gate.Const _ when tries > 0 -> attempt (tries - 1)
        | Dpa_logic.Gate.Const _ | Dpa_logic.Gate.Input | Dpa_logic.Gate.Buf _
        | Dpa_logic.Gate.Not _ | Dpa_logic.Gate.And _ | Dpa_logic.Gate.Or _
        | Dpa_logic.Gate.Xor _ -> id
      in
      attempt 8
    in
    let last = ref window.(0) in
    let created_this = ref [] in
    for _ = 1 to p.gates_per_output do
      let id = non_constant_gate () in
      if not (is_proper_gate (Builder.finish b) id) then ()
      else begin
        last := id;
        unused := id :: List.filter (fun u -> u <> id) !unused;
        avail := !avail @ [ id ];
        incr avail_len;
        created_this := id :: !created_this
      end
    done;
    (* sweep the stragglers into the output cone *)
    let out = ref !last in
    let rec sweep () =
      let stragglers = List.filter (fun u -> u <> !out) !unused in
      match stragglers with
      | [] -> ()
      | _ :: _ ->
        let rec chunks = function
          | [] -> []
          | rest ->
            let width = min (List.length rest) (1 + Rng.int rng p.max_fanin) in
            let rec split n = function
              | xs when n = 0 -> ([], xs)
              | [] -> ([], [])
              | x :: xs ->
                let taken, left = split (n - 1) xs in
                (x :: taken, left)
            in
            let taken, left = split width rest in
            taken :: chunks left
        in
        unused := [];
        List.iter (fun chunk -> out := gate_of rng (!out :: chunk)) (chunks stragglers);
        sweep ()
    in
    sweep ();
    (* guarantee a proper, window-dependent gate at the output *)
    let guard = ref 0 in
    let net = Builder.finish b in
    while (not (is_proper_gate net !out)) && !guard < 16 do
      incr guard;
      let x1 = window.(Rng.int rng (Array.length window)) in
      let x2 = window.(Rng.int rng (Array.length window)) in
      out := Builder.or_ b [ !out; Builder.and_ b [ x1; x2 ] ]
    done;
    (* only the earliest (shallowest) gates of this cone are offered for
       reuse by the next output *)
    let shallow_count =
      max 1 (int_of_float (p.reuse_fraction *. float_of_int p.gates_per_output))
    in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    prev_shallow := take shallow_count (List.rev !created_this);
    outputs := (Printf.sprintf "po%d" j, !out) :: !outputs
  done;
  List.iter (fun (name, id) -> Builder.output b name id) (List.rev !outputs)

let combinational p =
  validate p;
  let b = Builder.create ~name:p.name () in
  let inputs =
    Array.init p.n_inputs (fun k -> Builder.input ~name:(Printf.sprintf "pi%d" k) b)
  in
  build_into b ~inputs p;
  Builder.finish b

let sequential p ~n_ffs =
  validate p;
  if n_ffs < 1 then invalid_arg "Generator.sequential: need at least 1 flip-flop";
  let b = Builder.create ~name:p.name () in
  let real = Array.init p.n_inputs (fun k -> Builder.input ~name:(Printf.sprintf "pi%d" k) b) in
  let qs = Array.init n_ffs (fun k -> Builder.input ~name:(Printf.sprintf "q%d" k) b) in
  let p' = { p with n_inputs = p.n_inputs + n_ffs } in
  build_into b ~inputs:(Array.append real qs) p';
  let net = Builder.finish b in
  (* D pins tap random proper gates (deterministically from the seed) *)
  let rng = Rng.create (p.seed lxor 0x5EC1) in
  let gates = ref [] in
  Netlist.iter_nodes (fun i _ -> if is_proper_gate net i then gates := i :: !gates) net;
  let gate_arr = Array.of_list !gates in
  if Array.length gate_arr = 0 then invalid_arg "Generator.sequential: no gates generated";
  let ffs =
    Array.init n_ffs (fun _ ->
        { Dpa_seq.Seq_netlist.data = Rng.pick rng gate_arr; init = false })
  in
  Dpa_seq.Seq_netlist.create ~comb:net ~n_real_inputs:p.n_inputs ~ffs
