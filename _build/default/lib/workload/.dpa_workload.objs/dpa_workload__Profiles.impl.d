lib/workload/profiles.ml: Generator List String
