lib/workload/generator.ml: Array Dpa_logic Dpa_seq Dpa_util List Printf
