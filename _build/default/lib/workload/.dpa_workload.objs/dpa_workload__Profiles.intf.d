lib/workload/profiles.mli: Generator
