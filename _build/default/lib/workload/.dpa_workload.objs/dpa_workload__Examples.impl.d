lib/workload/examples.ml: Array Dpa_logic Dpa_seq List Printf
