lib/workload/generator.mli: Dpa_logic Dpa_seq
