lib/workload/examples.mli: Dpa_logic Dpa_seq
