module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Robdd = Dpa_bdd.Robdd
module Mapped = Dpa_domino.Mapped
module Inverterless = Dpa_synth.Inverterless

type report = {
  node_probs : float array;
  domino_switching : float;
  domino_power : float;
  input_inverter_power : float;
  output_inverter_power : float;
  total : float;
  bdd_nodes : int;
}

(* Signal probability of every block node, with both literals of one
   original PI sharing a single BDD variable. Returns the probabilities and
   the manager size. *)
let block_probabilities ~input_probs mapped =
  let net = Mapped.net mapped in
  let lits = Mapped.literals mapped in
  Array.iter
    (fun (opos, _) ->
      if opos >= Array.length input_probs then
        invalid_arg "Estimate: input_probs does not cover every referenced PI")
    lits;
  (* Variable order: the paper's heuristic on the block, projected onto the
     original PI positions (first occurrence wins; both polarities of a PI
     collapse to one variable). *)
  let block_order = Dpa_bdd.Ordering.reverse_topological net in
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (fun bpos ->
      let opos, _ = lits.(bpos) in
      if not (Hashtbl.mem seen opos) then begin
        Hashtbl.replace seen opos ();
        order := opos :: !order
      end)
    block_order;
  let order = Array.of_list (List.rev !order) in
  let level_of_orig = Hashtbl.create 16 in
  Array.iteri (fun lvl opos -> Hashtbl.replace level_of_orig opos lvl) order;
  let m = Robdd.create ~nvars:(Array.length order) in
  let pos_of_input_id = Hashtbl.create 16 in
  Array.iteri (fun k id -> Hashtbl.replace pos_of_input_id id k) (Netlist.inputs net);
  let roots = Array.make (Netlist.size net) Robdd.bdd_false in
  Netlist.iter_nodes
    (fun i g ->
      roots.(i) <-
        (match g with
        | Gate.Input ->
          let bpos = Hashtbl.find pos_of_input_id i in
          let opos, pol = lits.(bpos) in
          let v = Robdd.var m (Hashtbl.find level_of_orig opos) in
          (match pol with Inverterless.Pos -> v | Inverterless.Neg -> Robdd.neg m v)
        | Gate.Const b -> if b then Robdd.bdd_true else Robdd.bdd_false
        | Gate.And xs ->
          Array.fold_left (fun acc x -> Robdd.apply_and m acc roots.(x)) Robdd.bdd_true xs
        | Gate.Or xs ->
          Array.fold_left (fun acc x -> Robdd.apply_or m acc roots.(x)) Robdd.bdd_false xs
        | Gate.Buf _ | Gate.Not _ | Gate.Xor _ ->
          invalid_arg "Estimate: mapped block must be a pure AND/OR network"))
    net;
  let level_probs = Array.map (fun opos -> input_probs.(opos)) order in
  let probs = Array.map (fun root -> Robdd.probability m level_probs root) roots in
  probs, Robdd.total_nodes m

let probabilities_of_block ~input_probs mapped =
  fst (block_probabilities ~input_probs mapped)

let price mapped ~node_probs ~input_toggle =
  let net = Mapped.net mapped in
  let lib = Mapped.library mapped in
  let domino_switching = ref 0.0 and domino_power = ref 0.0 in
  Netlist.iter_nodes
    (fun i _ ->
      match Mapped.cell_of_node mapped i with
      | None -> ()
      | Some cell ->
        let s = node_probs.(i) in
        domino_switching := !domino_switching +. s;
        domino_power :=
          !domino_power
          +. s *. lib.Dpa_domino.Library.capacitance cell *. Mapped.drive mapped i
             *. (1.0 +. lib.Dpa_domino.Library.penalty cell))
    net;
  (* One static inverter per complemented PI literal in use. *)
  let complemented = Hashtbl.create 16 in
  Array.iter
    (fun (opos, pol) ->
      match pol with
      | Inverterless.Neg -> Hashtbl.replace complemented opos ()
      | Inverterless.Pos -> ())
    (Mapped.literals mapped);
  let input_inverter_power =
    Hashtbl.fold (fun opos () acc -> acc +. input_toggle opos) complemented 0.0
  in
  let assignment = Mapped.assignment mapped in
  let outs = Netlist.outputs net in
  let output_inverter_power = ref 0.0 in
  Array.iteri
    (fun k (_, driver) ->
      match assignment.(k) with
      | Dpa_synth.Phase.Negative ->
        output_inverter_power :=
          !output_inverter_power +. Model.inverter_after_domino node_probs.(driver)
      | Dpa_synth.Phase.Positive -> ())
    outs;
  let total = !domino_power +. input_inverter_power +. !output_inverter_power in
  {
    node_probs;
    domino_switching = !domino_switching;
    domino_power = !domino_power;
    input_inverter_power;
    output_inverter_power = !output_inverter_power;
    total;
    bdd_nodes = 0;
  }

let of_mapped ~input_probs mapped =
  let node_probs, bdd_nodes = block_probabilities ~input_probs mapped in
  let report =
    price mapped ~node_probs ~input_toggle:(fun opos ->
        Model.static_switching input_probs.(opos))
  in
  { report with bdd_nodes }

let by_cell_type ?(input_toggle = fun _ -> 0.0) mapped ~node_probs =
  let lib = Mapped.library mapped in
  let table = Hashtbl.create 16 in
  let add name power =
    let count, total = Option.value ~default:(0, 0.0) (Hashtbl.find_opt table name) in
    Hashtbl.replace table name (count + 1, total +. power)
  in
  Netlist.iter_nodes
    (fun i _ ->
      match Mapped.cell_of_node mapped i with
      | None -> ()
      | Some cell ->
        add (Dpa_domino.Cell.name cell)
          (node_probs.(i)
          *. lib.Dpa_domino.Library.capacitance cell
          *. Mapped.drive mapped i
          *. (1.0 +. lib.Dpa_domino.Library.penalty cell)))
    (Mapped.net mapped);
  let assignment = Mapped.assignment mapped in
  Array.iteri
    (fun k (_, driver) ->
      match assignment.(k) with
      | Dpa_synth.Phase.Negative -> add "INV(out)" (Model.inverter_after_domino node_probs.(driver))
      | Dpa_synth.Phase.Positive -> ())
    (Netlist.outputs (Mapped.net mapped));
  let complemented = Hashtbl.create 16 in
  Array.iter
    (fun (opos, pol) ->
      match pol with
      | Inverterless.Neg -> Hashtbl.replace complemented opos ()
      | Inverterless.Pos -> ())
    (Mapped.literals mapped);
  Hashtbl.iter (fun opos () -> add "INV(in)" (input_toggle opos)) complemented;
  Hashtbl.fold (fun name (count, power) acc -> (name, count, power) :: acc) table []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
