(** Switching-activity models (paper §2, Fig. 2).

    Domino gates discharge whenever their logical output is 1 and precharge
    back every cycle, so their switching probability {e equals} the signal
    probability (Property 2.1) — the asymmetric line of Fig. 2. Static CMOS
    gates switch when consecutive values differ: [2p(1-p)] under temporal
    independence — the parabola. Domino gates never glitch (Property 2.2),
    so zero-delay analysis is exact. *)

val domino_switching : float -> float
(** [domino_switching p = p]. Raises [Invalid_argument] outside [0,1]. *)

val static_switching : float -> float
(** [static_switching p = 2p(1-p)]. *)

val inverter_after_domino : float -> float
(** Switching of a static inverter whose input is a domino output with
    signal probability [p]: the input makes one monotonic transition per
    cycle exactly when the domino gate fires, so this is [p] as well. *)

val fig2_points : ?steps:int -> unit -> (float * float * float) list
(** [(p, domino, static)] samples over [0,1]; default 21 points — the data
    behind the paper's Fig. 2. *)
