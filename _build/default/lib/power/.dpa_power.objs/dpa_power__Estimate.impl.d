lib/power/estimate.ml: Array Dpa_bdd Dpa_domino Dpa_logic Dpa_synth Hashtbl List Model Option
