lib/power/model.mli:
