lib/power/estimate.mli: Dpa_domino
