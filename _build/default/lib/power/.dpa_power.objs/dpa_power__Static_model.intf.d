lib/power/static_model.mli: Dpa_logic
