lib/power/model.ml: List Printf
