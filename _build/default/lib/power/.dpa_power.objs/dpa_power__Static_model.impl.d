lib/power/static_model.ml: Array Dpa_bdd Dpa_domino Dpa_logic Dpa_synth Estimate Model
