let check p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Power.Model: probability %g outside [0,1]" p)

let domino_switching p =
  check p;
  p

let static_switching p =
  check p;
  2.0 *. p *. (1.0 -. p)

let inverter_after_domino p =
  check p;
  p

let fig2_points ?(steps = 21) () =
  List.init steps (fun k ->
      let p = float_of_int k /. float_of_int (steps - 1) in
      (p, domino_switching p, static_switching p))
