(** Zero-delay switching power of a static CMOS implementation of the
    same network — the comparison behind the paper's motivation that
    "domino gates can consume up to four times the power of an equivalent
    static gate" (§1).

    Every gate output toggles between consecutive cycles with probability
    [2p(1-p)] under temporal independence; this zero-delay figure ignores
    glitches, so it is a {e lower} bound for real static power, making the
    measured domino/static ratio conservative. *)

type report = {
  node_switching : float array;  (** per node; 0 for inputs and constants *)
  gate_total : float;  (** Σ over gates *)
  gates : int;
}

val of_netlist : input_probs:float array -> Dpa_logic.Netlist.t -> report
(** Exact node probabilities via the BDD engine; any AND/OR/NOT/XOR/BUF
    network is accepted (static CMOS has no inverter-freedom constraint). *)

val domino_to_static_ratio :
  input_probs:float array -> Dpa_logic.Netlist.t -> float
(** Convenience: total domino power of the minimum-area inverter-free
    realization divided by the static zero-delay power of the optimized
    network — the apples-to-apples version of the paper's "up to 4×"
    remark. Returns [nan] when the static total is zero. *)
