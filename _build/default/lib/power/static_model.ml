module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate

type report = {
  node_switching : float array;
  gate_total : float;
  gates : int;
}

let of_netlist ~input_probs net =
  let probs = Dpa_bdd.Build.probabilities ~input_probs net in
  let node_switching = Array.make (Netlist.size net) 0.0 in
  let total = ref 0.0 and gates = ref 0 in
  Netlist.iter_nodes
    (fun i g ->
      match g with
      | Gate.Input | Gate.Const _ -> ()
      | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ | Gate.Xor _ ->
        let s = Model.static_switching probs.(i) in
        node_switching.(i) <- s;
        total := !total +. s;
        incr gates)
    net;
  { node_switching; gate_total = !total; gates = !gates }

let domino_to_static_ratio ~input_probs net =
  let net = Dpa_synth.Opt.optimize net in
  let static = of_netlist ~input_probs net in
  let assignment = Dpa_synth.Min_area.best net in
  let mapped = Dpa_domino.Mapped.map (Dpa_synth.Inverterless.realize net assignment) in
  let domino = Estimate.of_mapped ~input_probs mapped in
  if static.gate_total = 0.0 then nan
  else domino.Estimate.total /. static.gate_total
