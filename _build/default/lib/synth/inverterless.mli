(** Inverter removal by phase assignment and DeMorgan's law (paper §3,
    Figs. 3–5).

    Given a technology-independent network (no XOR) and a phase for every
    primary output, produce the inverter-free {e domino block}: a monotone
    AND/OR network over literals of the original primary inputs. Internal
    inverters are pushed to the boundary — complemented primary inputs
    become static input inverters, negative-phase outputs keep one static
    output inverter. A node demanded in both polarities is implemented
    twice (its DeMorgan dual is separate logic): this is exactly the
    "trapped inverter" duplication cost of conflicting phases (Fig. 4). *)

type polarity = Pos | Neg

type t

val realize : Dpa_logic.Netlist.t -> Phase.assignment -> t
(** Raises [Invalid_argument] if the network contains XOR gates or the
    assignment length differs from the output count. *)

val block : t -> Dpa_logic.Netlist.t
(** The inverter-free network. Its inputs are literals: one per (original
    PI, polarity) actually used, named after the PI with a ["~"] prefix for
    complemented literals. Its outputs carry the original PO names; a
    negative-phase PO's block output is the complement of the PO value. *)

val phases : t -> Phase.assignment

val block_literal : t -> pi_position:int -> polarity -> int option
(** Block input id serving the given literal, if that literal is used.
    [pi_position] indexes the {e original} network's inputs. *)

val literals : t -> (int * polarity) array
(** Per block-input position: the (original PI position, polarity) literal
    it carries, in block-input declaration order. *)

val original_of_block_node : t -> int -> (int * polarity) option
(** Which (original node, polarity) a block node implements. [None] for
    nodes without an original counterpart (does not occur today, reserved
    for mapper-introduced nodes). *)

(** Cost summary. [area] is the paper-level pre-mapping proxy:
    domino gates + static inverters at both boundaries. *)
type stats = {
  domino_gates : int;
  input_inverters : int;
  output_inverters : int;
  duplicated_nodes : int;  (** original gates realized in both polarities *)
  area : int;
}

val stats : t -> stats

val eval_original_outputs : t -> bool array -> bool array
(** Evaluates the block on a vector of {e original} primary-input values
    (complementing literals and re-inverting negative-phase outputs) and
    returns the original primary-output values — the functional
    equivalence oracle used by the tests. *)
