(** Algebraic factoring of sum-of-products covers (SIS-style quick
    factoring).

    Two-level covers from {!Dpa_bdd.Isop} can be large; factoring re-shares
    common sub-expressions into a multi-level form — the classical
    counterpart of the flattening the domino style prefers, and the other
    half of a real technology-independent front end. The divisor at each
    step is the most frequent literal extended to the largest common cube
    of its quotient (SIS's [quick_factor]); factoring never increases the
    literal count. *)

type literal = {
  input : int;  (** primary-input position *)
  positive : bool;
}

type cube = literal list
(** Conjunction, sorted by input position; [[]] is the tautology cube. *)

(** Factored form over input literals. *)
type form =
  | Const of bool
  | Lit of literal
  | And of form list  (** ≥ 2 subforms *)
  | Or of form list  (** ≥ 2 subforms *)

val of_isop : order:int array -> Dpa_bdd.Isop.cube list -> cube list
(** Converts ISOP cubes (whose literals carry BDD {e levels}) into input-
    position cubes using the build order ([order.(level)] = position). *)

val factor : cube list -> form
(** Raises nothing; the empty cover is [Const false] and a cover
    containing the tautology cube is [Const true]. *)

val literal_count : form -> int
(** Literal occurrences in the form (the factoring cost metric). *)

val sop_literal_count : cube list -> int

val eval : form -> (int -> bool) -> bool
(** Evaluates under an assignment of input positions. *)

val build : Dpa_logic.Builder.t -> input_of_position:(int -> int) -> form -> int
(** Materializes the form through the structurally hashed builder. *)
