module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate

type polarity = Pos | Neg

let flip_pol = function
  | Pos -> Neg
  | Neg -> Pos

type t = {
  blk : Netlist.t;
  assignment : Phase.assignment;
  (* original PI position, polarity → block input id *)
  literal_ids : (int * polarity, int) Hashtbl.t;
  (* block node id → original node id, polarity *)
  origin : (int, int * polarity) Hashtbl.t;
  (* per block-input position: original PI position, polarity *)
  literal_info : (int * polarity) array;
  duplicated : int;
}

let realize original assignment =
  let outs = Netlist.outputs original in
  if Array.length assignment <> Array.length outs then
    invalid_arg "Inverterless.realize: assignment length mismatch";
  let blk = Netlist.create ~name:(Netlist.name original ^ "_domino") () in
  let literal_ids = Hashtbl.create 32 in
  let origin = Hashtbl.create 64 in
  let literal_info = ref [] in
  let pi_position = Hashtbl.create 32 in
  Array.iteri (fun pos id -> Hashtbl.replace pi_position id pos) (Netlist.inputs original);
  let memo : (int * polarity, int) Hashtbl.t = Hashtbl.create 64 in
  (* Demand original node [i] in polarity [pol]; returns the block node that
     realizes it. Inverters flip the demanded polarity and vanish; AND/OR in
     negative polarity materialize as their DeMorgan dual over negative
     fanins. *)
  let rec build i pol =
    match Hashtbl.find_opt memo (i, pol) with
    | Some id -> id
    | None ->
      let id =
        match Netlist.gate original i with
        | Gate.Input ->
          let pos = Hashtbl.find pi_position i in
          let key = (pos, pol) in
          (match Hashtbl.find_opt literal_ids key with
          | Some id -> id
          | None ->
            let base =
              match Netlist.node_name original i with
              | Some n -> n
              | None -> Printf.sprintf "x%d" pos
            in
            let name = match pol with Pos -> base | Neg -> "~" ^ base in
            let id = Netlist.add_input ~name blk in
            Hashtbl.replace literal_ids key id;
            literal_info := key :: !literal_info;
            id)
        | Gate.Const b ->
          let v = match pol with Pos -> b | Neg -> not b in
          Netlist.add_gate blk (Gate.Const v)
        | Gate.Buf x -> build x pol
        | Gate.Not x -> build x (flip_pol pol)
        | Gate.And xs ->
          let fis = Array.map (fun x -> build x pol) xs in
          let g = match pol with Pos -> Gate.And fis | Neg -> Gate.Or fis in
          Netlist.add_gate blk g
        | Gate.Or xs ->
          let fis = Array.map (fun x -> build x pol) xs in
          let g = match pol with Pos -> Gate.Or fis | Neg -> Gate.And fis in
          Netlist.add_gate blk g
        | Gate.Xor _ ->
          invalid_arg "Inverterless.realize: XOR present; run Opt.optimize first"
      in
      Hashtbl.replace memo (i, pol) id;
      (match Netlist.gate original i with
      | Gate.And _ | Gate.Or _ | Gate.Const _ -> Hashtbl.replace origin id (i, pol)
      | Gate.Input | Gate.Buf _ | Gate.Not _ | Gate.Xor _ -> ());
      id
  in
  Array.iteri
    (fun k (po, driver) ->
      let pol = match assignment.(k) with Phase.Positive -> Pos | Phase.Negative -> Neg in
      Netlist.add_output blk po (build driver pol))
    outs;
  (* A duplicated node is an original AND/OR realized in both polarities. *)
  let duplicated =
    let seen = Hashtbl.create 64 in
    Hashtbl.iter
      (fun (i, _) _ ->
        match Netlist.gate original i with
        | Gate.And _ | Gate.Or _ ->
          Hashtbl.replace seen i (1 + Option.value ~default:0 (Hashtbl.find_opt seen i))
        | Gate.Input | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.Xor _ -> ())
      memo;
    Hashtbl.fold (fun _ count acc -> if count > 1 then acc + 1 else acc) seen 0
  in
  {
    blk;
    assignment = Array.copy assignment;
    literal_ids;
    origin;
    literal_info = Array.of_list (List.rev !literal_info);
    duplicated;
  }

let block t = t.blk

let phases t = Array.copy t.assignment

let block_literal t ~pi_position pol = Hashtbl.find_opt t.literal_ids (pi_position, pol)

let original_of_block_node t id = Hashtbl.find_opt t.origin id

let literals t = Array.copy t.literal_info

type stats = {
  domino_gates : int;
  input_inverters : int;
  output_inverters : int;
  duplicated_nodes : int;
  area : int;
}

let stats t =
  let domino_gates = Netlist.gate_count t.blk in
  let input_inverters =
    Array.fold_left
      (fun acc (_, pol) -> match pol with Neg -> acc + 1 | Pos -> acc)
      0 t.literal_info
  in
  let output_inverters = Phase.count_negative t.assignment in
  {
    domino_gates;
    input_inverters;
    output_inverters;
    duplicated_nodes = t.duplicated;
    area = domino_gates + input_inverters + output_inverters;
  }

let eval_original_outputs t vec =
  let literal_vec =
    Array.map
      (fun (pos, pol) ->
        match pol with
        | Pos -> vec.(pos)
        | Neg -> not vec.(pos))
      t.literal_info
  in
  let blk_outs = Dpa_logic.Eval.outputs t.blk literal_vec in
  Array.mapi
    (fun k v -> match t.assignment.(k) with Phase.Positive -> v | Phase.Negative -> not v)
    blk_outs
