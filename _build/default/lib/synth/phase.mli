(** Output phases.

    A primary output is in {e positive} phase when no inverter appears at
    the output boundary and in {e negative} phase when one static inverter
    does (the domino block then computes the complement internally; the
    logical value of the output is always preserved — paper §3). *)

type t = Positive | Negative

type assignment = t array
(** Indexed by primary-output position (declaration order). *)

val flip : t -> t

val all_positive : int -> assignment

val flip_at : assignment -> int -> assignment
(** Fresh assignment with one position flipped. *)

val of_int : num_outputs:int -> int -> assignment
(** Bit [k] of the integer chooses the phase of output [k]
    (1 = [Negative]); the enumeration order of exhaustive search. *)

val to_int : assignment -> int

val enumerate : num_outputs:int -> assignment Seq.t
(** All [2^n] assignments. Raises [Invalid_argument] beyond 24 outputs. *)

val random : Dpa_util.Rng.t -> num_outputs:int -> assignment

val count_negative : assignment -> int

val to_string : assignment -> string
(** E.g. ["+-+"]. *)

val equal : assignment -> assignment -> bool

val pp : Format.formatter -> t -> unit
