module Netlist = Dpa_logic.Netlist

let area_of t assignment = (Inverterless.stats (Inverterless.realize t assignment)).area

let exhaustive t =
  let n = Netlist.num_outputs t in
  let best = ref (Phase.all_positive n) in
  let best_area = ref (area_of t !best) in
  Seq.iter
    (fun a ->
      let area = area_of t a in
      if area < !best_area then begin
        best := a;
        best_area := area
      end)
    (Phase.enumerate ~num_outputs:n);
  !best

let local_search ?start t =
  let n = Netlist.num_outputs t in
  let current = ref (match start with Some a -> Array.copy a | None -> Phase.all_positive n) in
  let current_area = ref (area_of t !current) in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_k = ref (-1) and best_area = ref !current_area in
    for k = 0 to n - 1 do
      let area = area_of t (Phase.flip_at !current k) in
      if area < !best_area then begin
        best_area := area;
        best_k := k
      end
    done;
    if !best_k >= 0 then begin
      current := Phase.flip_at !current !best_k;
      current_area := !best_area;
      improved := true
    end
  done;
  !current

let best ?(exhaustive_limit = 12) t =
  if Netlist.num_outputs t <= exhaustive_limit then exhaustive t else local_search t
