(** Two-level resynthesis of output cones via BDD-based ISOP extraction.

    Collapses each primary-output cone with a small enough support to its
    irredundant sum-of-products and rebuilds it as a two-level (AND-OR)
    network with structural sharing — the "highly flattened" shape the
    paper observes in control domino blocks (§4.2.2: "the circuits are
    highly flattened and a node's average fanout is high"). Cones whose
    support exceeds the limit keep their multi-level structure. *)

type stats = {
  collapsed_outputs : int;
  kept_outputs : int;  (** support too wide, structure preserved *)
  cubes : int;  (** total ISOP cubes emitted *)
  literals : int;  (** total ISOP literals *)
}

val two_level :
  ?max_support:int -> Dpa_logic.Netlist.t -> Dpa_logic.Netlist.t * stats
(** Functionally equivalent reconstruction; [max_support] defaults to 12.
    The result preserves the input interface and output names/order and is
    domino-ready (AND/OR/NOT only). *)

val factored :
  ?max_support:int -> Dpa_logic.Netlist.t -> Dpa_logic.Netlist.t * stats
(** Like {!two_level} but each collapsed cover is algebraically factored
    ({!Factor}) before rebuilding: the multi-level form never carries more
    literals than the flat cover, recovering sharing the two-level form
    spells out. [stats.literals] reports the factored literal count. *)
