lib/synth/factor.mli: Dpa_bdd Dpa_logic
