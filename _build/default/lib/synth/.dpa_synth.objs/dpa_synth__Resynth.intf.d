lib/synth/resynth.mli: Dpa_logic
