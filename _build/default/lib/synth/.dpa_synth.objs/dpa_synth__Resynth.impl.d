lib/synth/resynth.ml: Array Dpa_bdd Dpa_logic Factor Fun List
