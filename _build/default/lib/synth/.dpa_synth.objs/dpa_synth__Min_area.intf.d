lib/synth/min_area.mli: Dpa_logic Phase
