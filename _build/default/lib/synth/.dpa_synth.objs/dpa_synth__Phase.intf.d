lib/synth/phase.mli: Dpa_util Format Seq
