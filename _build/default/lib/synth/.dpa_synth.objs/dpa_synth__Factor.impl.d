lib/synth/factor.ml: Array Dpa_bdd Dpa_logic Hashtbl List Option
