lib/synth/opt.mli: Dpa_logic
