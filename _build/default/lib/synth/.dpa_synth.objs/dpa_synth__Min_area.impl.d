lib/synth/min_area.ml: Array Dpa_logic Inverterless Phase Seq
