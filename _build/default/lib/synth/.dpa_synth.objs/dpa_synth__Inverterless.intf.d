lib/synth/inverterless.mli: Dpa_logic Phase
