lib/synth/phase.ml: Array Dpa_util Format List Seq String
