lib/synth/inverterless.ml: Array Dpa_logic Hashtbl List Option Phase Printf
