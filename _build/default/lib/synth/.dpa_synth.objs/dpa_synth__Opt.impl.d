lib/synth/opt.ml: Array Dpa_logic List
