module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Builder = Dpa_logic.Builder

let optimize ?(decompose_xor = true) t =
  let b = Builder.create ~name:(Netlist.name t) () in
  let n = Netlist.size t in
  let mapping = Array.make n (-1) in
  (* Preserve the full input interface. *)
  Array.iter
    (fun id -> mapping.(id) <- Builder.input ?name:(Netlist.node_name t id) b)
    (Netlist.inputs t);
  let rec build i =
    if mapping.(i) >= 0 then mapping.(i)
    else begin
      let f x = build x in
      let id =
        match Netlist.gate t i with
        | Gate.Input -> assert false (* mapped above *)
        | Gate.Const c -> Builder.const b c
        | Gate.Buf x -> f x
        | Gate.Not x -> Builder.not_ b (f x)
        | Gate.And xs -> Builder.and_ b (List.map f (Array.to_list xs))
        | Gate.Or xs -> Builder.or_ b (List.map f (Array.to_list xs))
        | Gate.Xor (x, y) ->
          let ix = f x and iy = f y in
          if decompose_xor then
            Builder.or_ b
              [ Builder.and_ b [ ix; Builder.not_ b iy ];
                Builder.and_ b [ Builder.not_ b ix; iy ] ]
          else Builder.xor_ b ix iy
      in
      mapping.(i) <- id;
      id
    end
  in
  Array.iter (fun (po, d) -> Builder.output b po (build d)) (Netlist.outputs t);
  Builder.finish b

let is_domino_ready t =
  let ok = ref true in
  Netlist.iter_nodes
    (fun _ g ->
      match g with
      | Gate.Xor _ -> ok := false
      | Gate.Input | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ -> ())
    t;
  !ok
