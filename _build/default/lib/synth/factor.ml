type literal = {
  input : int;
  positive : bool;
}

type cube = literal list

type form =
  | Const of bool
  | Lit of literal
  | And of form list
  | Or of form list

let compare_literal a b =
  match compare a.input b.input with
  | 0 -> compare a.positive b.positive
  | c -> c

let of_isop ~order cubes =
  List.map
    (fun cube ->
      List.sort compare_literal
        (List.map
           (fun { Dpa_bdd.Isop.level; positive } -> { input = order.(level); positive })
           cube))
    cubes

let sop_literal_count cubes = List.fold_left (fun acc c -> acc + List.length c) 0 cubes

let rec literal_count = function
  | Const _ -> 0
  | Lit _ -> 1
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + literal_count f) 0 fs

(* smart constructors keep the form canonicalized (no unary nodes) *)
let mk_and = function
  | [] -> Const true
  | [ f ] -> f
  | fs -> And fs

let mk_or = function
  | [] -> Const false
  | [ f ] -> f
  | fs -> Or fs

let form_of_cube = function
  | [] -> Const true
  | [ l ] -> Lit l
  | lits -> And (List.map (fun l -> Lit l) lits)

(* most frequent literal across the cover; None if every literal is
   unique (no sharing to extract) *)
let best_literal cubes =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun cube ->
      List.iter
        (fun l ->
          Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
        cube)
    cubes;
  Hashtbl.fold
    (fun l c best ->
      match best with
      | Some (_, bc) when bc >= c -> best
      | Some _ | None -> if c >= 2 then Some (l, c) else best)
    counts None

let cube_contains cube l = List.exists (fun x -> compare_literal x l = 0) cube

let cube_remove cube c = List.filter (fun x -> not (cube_contains c x)) cube

(* largest cube common to every cube of the cover *)
let common_cube = function
  | [] -> []
  | first :: rest ->
    List.fold_left (fun acc cube -> List.filter (cube_contains cube) acc) first rest

let rec factor cubes =
  (* a tautology cube absorbs the cover *)
  if List.exists (fun c -> c = []) cubes then Const true
  else
    match cubes with
    | [] -> Const false
    | [ cube ] -> form_of_cube cube
    | _ :: _ -> (
      match best_literal cubes with
      | None ->
        (* no literal is shared: the cover is already its best form *)
        mk_or (List.map form_of_cube cubes)
      | Some (l, _) ->
        let with_l = List.filter (fun c -> cube_contains c l) cubes in
        let without_l = List.filter (fun c -> not (cube_contains c l)) cubes in
        (* divisor = l extended to the largest cube common to all cubes
           containing l (SIS quick_factor) *)
        let divisor = common_cube with_l in
        assert (cube_contains divisor l);
        let quotient = List.map (fun c -> cube_remove c divisor) with_l in
        let factored_with = mk_and (form_of_cube divisor :: [ factor quotient ]) in
        let factored_with =
          (* flatten And(And …) produced when the quotient is a cube *)
          match factored_with with
          | And fs ->
            let flat =
              List.concat_map (function And gs -> gs | other -> [ other ]) fs
            in
            mk_and flat
          | Const _ | Lit _ | Or _ -> factored_with
        in
        if without_l = [] then factored_with
        else mk_or [ factored_with; factor without_l ])

let rec eval form lookup =
  match form with
  | Const b -> b
  | Lit { input; positive } -> if positive then lookup input else not (lookup input)
  | And fs -> List.for_all (fun f -> eval f lookup) fs
  | Or fs -> List.exists (fun f -> eval f lookup) fs

let rec build b ~input_of_position form =
  match form with
  | Const v -> Dpa_logic.Builder.const b v
  | Lit { input; positive } ->
    let id = input_of_position input in
    if positive then id else Dpa_logic.Builder.not_ b id
  | And fs -> Dpa_logic.Builder.and_ b (List.map (build b ~input_of_position) fs)
  | Or fs -> Dpa_logic.Builder.or_ b (List.map (build b ~input_of_position) fs)
