(** Technology-independent optimization (paper §3, flow step 1).

    Rebuilds the cone of every primary output through the structurally
    hashed {!Dpa_logic.Builder}: constant propagation, double-inverter and
    buffer elimination, fanin canonicalization, common-subexpression
    sharing, and dead-logic removal. Optionally decomposes XOR into
    AND/OR/NOT (mandatory before domino phase assignment, which needs a
    monotone-decomposable network). *)

val optimize : ?decompose_xor:bool -> Dpa_logic.Netlist.t -> Dpa_logic.Netlist.t
(** [optimize t] preserves the primary input interface (declaration order,
    names, including unused inputs) and the primary output names/order.
    [decompose_xor] defaults to [true]. *)

val is_domino_ready : Dpa_logic.Netlist.t -> bool
(** True when the network contains no XOR (the only gate the inverterless
    transform cannot dualize). *)
