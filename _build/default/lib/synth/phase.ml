type t = Positive | Negative

type assignment = t array

let flip = function
  | Positive -> Negative
  | Negative -> Positive

let all_positive n = Array.make n Positive

let flip_at a k =
  let a' = Array.copy a in
  a'.(k) <- flip a'.(k);
  a'

let of_int ~num_outputs code =
  Array.init num_outputs (fun k ->
      if (code lsr k) land 1 = 1 then Negative else Positive)

let to_int a =
  Array.to_list a
  |> List.mapi (fun k p -> match p with Negative -> 1 lsl k | Positive -> 0)
  |> List.fold_left ( lor ) 0

let enumerate ~num_outputs =
  if num_outputs > 24 then
    invalid_arg "Phase.enumerate: more than 24 outputs is not enumerable";
  Seq.init (1 lsl num_outputs) (fun code -> of_int ~num_outputs code)

let random rng ~num_outputs =
  Array.init num_outputs (fun _ ->
      if Dpa_util.Rng.bool rng then Negative else Positive)

let count_negative a =
  Array.fold_left (fun acc p -> match p with Negative -> acc + 1 | Positive -> acc) 0 a

let to_string a =
  String.init (Array.length a) (fun k ->
      match a.(k) with Positive -> '+' | Negative -> '-')

let equal a b = a = b

let pp ppf = function
  | Positive -> Format.pp_print_string ppf "positive"
  | Negative -> Format.pp_print_string ppf "negative"
