module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Builder = Dpa_logic.Builder

type stats = {
  collapsed_outputs : int;
  kept_outputs : int;
  cubes : int;
  literals : int;
}

let rebuild ~express ?(max_support = 12) t =
  let built = Dpa_bdd.Build.of_netlist t in
  let m = built.Dpa_bdd.Build.manager in
  let b = Builder.create ~name:(Netlist.name t) () in
  let mapping = Array.make (Netlist.size t) (-1) in
  Array.iter
    (fun id -> mapping.(id) <- Builder.input ?name:(Netlist.node_name t id) b)
    (Netlist.inputs t);
  (* structural copy for cones kept multi-level *)
  let rec copy i =
    if mapping.(i) >= 0 then mapping.(i)
    else begin
      let f x = copy x in
      let id =
        match Netlist.gate t i with
        | Gate.Input -> assert false
        | Gate.Const c -> Builder.const b c
        | Gate.Buf x -> f x
        | Gate.Not x -> Builder.not_ b (f x)
        | Gate.And xs -> Builder.and_ b (List.map f (Array.to_list xs))
        | Gate.Or xs -> Builder.or_ b (List.map f (Array.to_list xs))
        | Gate.Xor (x, y) ->
          let ix = f x and iy = f y in
          Builder.or_ b
            [ Builder.and_ b [ ix; Builder.not_ b iy ];
              Builder.and_ b [ Builder.not_ b ix; iy ] ]
      in
      mapping.(i) <- id;
      id
    end
  in
  (* new-builder input id for a BDD level *)
  let input_of_level =
    let ins = Netlist.inputs t in
    fun level -> mapping.(ins.(built.Dpa_bdd.Build.order.(level)))
  in
  let collapsed = ref 0 and kept = ref 0 and cubes_total = ref 0 and lits_total = ref 0 in
  Array.iter
    (fun (po, driver) ->
      let root = built.Dpa_bdd.Build.roots.(driver) in
      let support = Dpa_bdd.Robdd.support m root in
      if List.length support > max_support then begin
        incr kept;
        Builder.output b po (copy driver)
      end
      else begin
        incr collapsed;
        let cover = Dpa_bdd.Isop.of_node m root in
        cubes_total := !cubes_total + List.length cover;
        let id, lits = express b ~input_of_level cover in
        lits_total := !lits_total + lits;
        Builder.output b po id
      end)
    (Netlist.outputs t);
  ( Builder.finish b,
    {
      collapsed_outputs = !collapsed;
      kept_outputs = !kept;
      cubes = !cubes_total;
      literals = !lits_total;
    } )

(* flat two-level expression of an ISOP cover *)
let express_two_level b ~input_of_level cover =
  let build_cube cube =
    match cube with
    | [] -> Builder.const b true
    | _ :: _ ->
      let literals =
        List.map
          (fun { Dpa_bdd.Isop.level; positive } ->
            let x = input_of_level level in
            if positive then x else Builder.not_ b x)
          cube
      in
      Builder.and_ b literals
  in
  let id =
    match cover with
    | [] -> Builder.const b false
    | cubes -> Builder.or_ b (List.map build_cube cubes)
  in
  (id, Dpa_bdd.Isop.literal_count cover)

let two_level ?max_support t = rebuild ~express:express_two_level ?max_support t

let factored ?max_support t =
  (* ISOP literals carry BDD levels; Factor wants input positions, and its
     builder callback wants the new netlist's input for a position. The
     level → position translation happens once per cover via of_isop with
     the identity position map folded into input_of_level. *)
  let express b ~input_of_level cover =
    (* reuse the level-indexed accessor directly: treat levels as
       positions for Factor by translating through an identity order *)
    let max_level =
      List.fold_left
        (fun acc cube ->
          List.fold_left (fun acc { Dpa_bdd.Isop.level; _ } -> max acc level) acc cube)
        (-1) cover
    in
    let order = Array.init (max_level + 1) Fun.id in
    let cubes = Factor.of_isop ~order cover in
    let form = Factor.factor cubes in
    let id = Factor.build b ~input_of_position:input_of_level form in
    (id, Factor.literal_count form)
  in
  rebuild ~express ?max_support t
