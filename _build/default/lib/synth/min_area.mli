(** Minimum-area phase assignment — the paper's "MA" baseline, i.e. the
    output-phase algorithm of Puri, Bjorksten & Rosser (ICCAD'96) that
    minimizes logic duplication with no regard to switching activity.

    Cost of an assignment = {!Inverterless.stats}.area of its realization
    (domino gates + boundary inverters). *)

val area_of : Dpa_logic.Netlist.t -> Phase.assignment -> int

val exhaustive : Dpa_logic.Netlist.t -> Phase.assignment
(** Optimal over all [2^n] assignments (first minimum in enumeration
    order). Raises [Invalid_argument] beyond 24 outputs. *)

val local_search : ?start:Phase.assignment -> Dpa_logic.Netlist.t -> Phase.assignment
(** Steepest-descent single-output flips from [start] (default all
    positive) until no flip reduces area. *)

val best : ?exhaustive_limit:int -> Dpa_logic.Netlist.t -> Phase.assignment
(** [exhaustive] when the output count is at most [exhaustive_limit]
    (default 12), otherwise [local_search] — mirroring the paper, which ran
    the optimal algorithm on its (small-PO-count) public circuits. *)
