lib/core/seq_flow.ml: Array Dpa_logic Dpa_seq Flow List Printf
