lib/core/report.ml: Buffer Dpa_synth Dpa_util Flow List Printf
