lib/core/seq_flow.mli: Dpa_seq Flow
