lib/core/report.mli: Flow
