lib/core/flow.ml: Array Dpa_domino Dpa_logic Dpa_phase Dpa_power Dpa_synth Dpa_timing Dpa_util Float
