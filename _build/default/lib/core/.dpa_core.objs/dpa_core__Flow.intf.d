lib/core/flow.mli: Dpa_domino Dpa_logic Dpa_synth Dpa_timing
