(** End-to-end flow for sequential domino designs.

    The paper's full pipeline (Fig. 6): build the s-graph, cut the
    enhanced-MFVS feedback set, propagate steady-state flip-flop
    probabilities through the acyclic remainder, then run the
    minimum-area vs minimum-power comparison on the combinational core
    with those probabilities injected at the flip-flop pseudo-inputs. *)

type result = {
  comb : Flow.result;  (** the MA/MP comparison of the next-state/output logic *)
  fvs : int list;  (** flip-flops cut into pseudo-inputs *)
  ff_probs : float array;  (** steady Q probability per flip-flop *)
  supervertices : int;  (** symmetry groups formed on the s-graph *)
}

val compare_ma_mp :
  ?config:Flow.config -> ?refine:int -> Dpa_seq.Seq_netlist.t -> result
(** Real primary inputs take [config.input_prob]; cut flip-flops seed at
    0.5 and are optionally [refine]d to a fixpoint (default 2 passes). *)
