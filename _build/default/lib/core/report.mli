(** Rendering flow results in the paper's table layout. *)

val table : title:string -> (string * Flow.result) list -> string
(** [(description, result)] rows in order; columns match the paper's
    Tables 1–2 (circuit, description, #PIs, #POs, MA size/power, MP
    size/power, % area penalty, % power saving) plus an average row. *)

val summary : Flow.result -> string
(** One-paragraph human-readable comparison for a single circuit. *)

val averages : Flow.result list -> float * float
(** (mean area penalty %, mean power saving %). *)

val csv : (string * Flow.result) list -> string
(** Machine-readable export (one header row; RFC-4180-ish, no quoting
    needed as all fields are names and numbers). *)
