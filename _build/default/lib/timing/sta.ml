module Netlist = Dpa_logic.Netlist
module Mapped = Dpa_domino.Mapped
module Inverterless = Dpa_synth.Inverterless

type report = {
  arrival : float array;
  output_arrival : float array;
  critical_delay : float;
  critical_path : int list;
}

let analyze ?(model = Delay.default) mapped =
  let net = Mapped.net mapped in
  let n = Netlist.size net in
  let fanouts = Dpa_logic.Topo.fanouts net in
  let assignment = Mapped.assignment mapped in
  let outs = Netlist.outputs net in
  (* drives of negative-phase output inverters loading each node *)
  let inverter_loads = Array.make n 0.0 in
  Array.iteri
    (fun k (_, d) ->
      match assignment.(k) with
      | Dpa_synth.Phase.Negative -> inverter_loads.(d) <- inverter_loads.(d) +. 1.0
      | Dpa_synth.Phase.Positive -> ())
    outs;
  let fanout_load i =
    Array.fold_left (fun acc r -> acc +. Mapped.drive mapped r) inverter_loads.(i) fanouts.(i)
  in
  let lits = Mapped.literals mapped in
  let input_pos = Hashtbl.create 16 in
  Array.iteri (fun pos id -> Hashtbl.replace input_pos id pos) (Netlist.inputs net);
  let arrival = Array.make n 0.0 in
  Netlist.iter_nodes
    (fun i g ->
      match Mapped.cell_of_node mapped i with
      | Some cell ->
        let worst_fanin =
          Array.fold_left (fun acc x -> Float.max acc arrival.(x)) 0.0 (Dpa_logic.Gate.fanins g)
        in
        let delay =
          (Delay.cell_intrinsic model cell +. (model.Delay.load_factor *. fanout_load i))
          /. Mapped.drive mapped i
        in
        arrival.(i) <- worst_fanin +. delay
      | None -> (
        let fis = Dpa_logic.Gate.fanins g in
        if Array.length fis > 0 then
          (* an AND absorbed into a compound cell: part of the consuming
             cell's pulldown network, no stage delay of its own *)
          arrival.(i) <- Array.fold_left (fun acc x -> Float.max acc arrival.(x)) 0.0 fis
        else
          match Hashtbl.find_opt input_pos i with
          | Some pos ->
            let _, pol = lits.(pos) in
            arrival.(i) <-
              (match pol with
              | Inverterless.Neg -> model.Delay.inverter_delay
              | Inverterless.Pos -> 0.0)
          | None -> arrival.(i) <- 0.0 (* constant *)))
    net;
  let output_arrival =
    Array.mapi
      (fun k (_, d) ->
        arrival.(d)
        +.
        match assignment.(k) with
        | Dpa_synth.Phase.Negative -> model.Delay.inverter_delay
        | Dpa_synth.Phase.Positive -> 0.0)
      outs
  in
  let critical_delay = Array.fold_left Float.max 0.0 output_arrival in
  let critical_path =
    if Array.length outs = 0 then []
    else begin
      let worst_po = ref 0 in
      Array.iteri (fun k a -> if a > output_arrival.(!worst_po) then worst_po := k) output_arrival;
      let _, start = outs.(!worst_po) in
      let rec back node acc =
        let acc = node :: acc in
        let fis = Netlist.fanins net node in
        if Array.length fis = 0 then acc
        else begin
          let worst = ref fis.(0) in
          Array.iter (fun x -> if arrival.(x) > arrival.(!worst) then worst := x) fis;
          back !worst acc
        end
      in
      back start []
    end
  in
  { arrival; output_arrival; critical_delay; critical_path }
