module Mapped = Dpa_domino.Mapped

type result = {
  met : bool;
  iterations : int;
  initial_delay : float;
  final_delay : float;
  upsized_cells : int;
}

let meet ?(model = Delay.default) ?(step = 1.25) ?(max_drive = 8.0) ?(max_iterations = 64)
    ~clock mapped =
  if clock <= 0.0 then invalid_arg "Resize.meet: clock must be positive";
  let initial_delay = (Sta.analyze ~model mapped).Sta.critical_delay in
  let rec loop iter delay =
    if delay <= clock then (true, iter, delay)
    else if iter >= max_iterations then (false, iter, delay)
    else begin
      let report = Sta.analyze ~model mapped in
      let progressed = ref false in
      List.iter
        (fun node ->
          match Mapped.cell_of_node mapped node with
          | Some _ ->
            let d = Mapped.drive mapped node in
            if d < max_drive then begin
              Mapped.set_drive mapped node (Float.min max_drive (d *. step));
              progressed := true
            end
          | None -> ())
        report.Sta.critical_path;
      if not !progressed then (false, iter + 1, report.Sta.critical_delay)
      else
        let delay' = (Sta.analyze ~model mapped).Sta.critical_delay in
        loop (iter + 1) delay'
    end
  in
  let met, iterations, final_delay = loop 0 initial_delay in
  let upsized_cells = ref 0 in
  Dpa_logic.Netlist.iter_nodes
    (fun i _ -> if Mapped.drive mapped i > 1.0 then incr upsized_cells)
    (Mapped.net mapped);
  { met; iterations; initial_delay; final_delay; upsized_cells = !upsized_cells }
