(** Static timing analysis of mapped domino blocks.

    Domino blocks are glitch-free and monotone, so a single longest-path
    arrival-time propagation is exact. Complemented primary-input literals
    arrive one inverter later than true literals; negative-phase outputs
    pay one inverter after the block — phase assignment therefore has a
    real timing cost, which the Table 2 experiments exercise. *)

type report = {
  arrival : float array;  (** per block-net node *)
  output_arrival : float array;  (** per PO, inverter included *)
  critical_delay : float;  (** max over outputs *)
  critical_path : int list;  (** node ids, input to output *)
}

val analyze : ?model:Delay.model -> Dpa_domino.Mapped.t -> report
