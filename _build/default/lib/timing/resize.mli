(** Timing-driven cell resizing — our substitute for the paper's
    "transistor resizing (after technology mapping) in order to meet
    realistic timing constraints" (Table 2 flow).

    Iteratively upsizes every dynamic cell on the current critical path
    (multiplying its drive, which divides its delay and multiplies its
    effective capacitance — hence the power cost of timing closure) until
    the clock constraint is met or the drive cap is reached. The block's
    drives are modified in place. *)

type result = {
  met : bool;
  iterations : int;
  initial_delay : float;
  final_delay : float;
  upsized_cells : int;  (** cells whose final drive exceeds 1 *)
}

val meet :
  ?model:Delay.model ->
  ?step:float ->
  ?max_drive:float ->
  ?max_iterations:int ->
  clock:float ->
  Dpa_domino.Mapped.t ->
  result
(** Defaults: [step = 1.25] (drive multiplier per round), [max_drive = 8],
    [max_iterations = 64]. *)
