lib/timing/resize.mli: Delay Dpa_domino
