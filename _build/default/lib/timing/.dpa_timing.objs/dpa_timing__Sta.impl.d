lib/timing/sta.ml: Array Delay Dpa_domino Dpa_logic Dpa_synth Float Hashtbl
