lib/timing/delay.mli: Dpa_domino
