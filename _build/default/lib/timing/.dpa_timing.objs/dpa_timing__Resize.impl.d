lib/timing/resize.ml: Delay Dpa_domino Dpa_logic Float List Sta
