lib/timing/delay.ml: Dpa_domino
