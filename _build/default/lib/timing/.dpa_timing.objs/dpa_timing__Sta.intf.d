lib/timing/sta.mli: Delay Dpa_domino
