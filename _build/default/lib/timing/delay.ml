type model = {
  stage_delay : float;
  base_delay : float;
  load_factor : float;
  inverter_delay : float;
}

let default =
  { stage_delay = 0.30; base_delay = 0.50; load_factor = 0.05; inverter_delay = 0.40 }

let cell_intrinsic model cell =
  match cell with
  | Dpa_domino.Cell.Dynamic _ | Dpa_domino.Cell.Compound _ ->
    model.base_delay
    +. (model.stage_delay *. float_of_int (Dpa_domino.Cell.series_transistors cell))
  | Dpa_domino.Cell.Static_inverter -> model.inverter_delay
