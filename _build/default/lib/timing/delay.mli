(** Gate delay model for domino blocks.

    Dynamic-cell delay grows with the pulldown stack depth (AND cells are
    slower than OR cells — the very asymmetry the paper's penalty [P_i]
    exists to police) and with the fanout load, and shrinks as a cell is
    upsized:

    [delay = (intrinsic(cell) + load_factor × fanout_load) / drive]

    where [fanout_load] sums the input capacitance (≈ drive) of reading
    cells plus the boundary inverter if any. Static inverters have a fixed
    delay scaled the same way. Units are arbitrary ("gate delays"). *)

type model = {
  stage_delay : float;  (** per series transistor in the pulldown stack *)
  base_delay : float;  (** precharge-device and buffer overhead *)
  load_factor : float;  (** delay per unit of fanout load *)
  inverter_delay : float;  (** boundary static inverters *)
}

val default : model
(** [stage_delay = 0.30], [base_delay = 0.50], [load_factor = 0.05],
    [inverter_delay = 0.40]. *)

val cell_intrinsic : model -> Dpa_domino.Cell.t -> float
(** [base + stage × series_transistors] for dynamic cells;
    [inverter_delay] for the static inverter. *)
