module Vec = Dpa_util.Vec

type node = { gate : Gate.t; nname : string option }

type t = {
  nodes : node Vec.t;
  mutable ins : int list; (* reversed *)
  mutable outs : (string * int) list; (* reversed *)
  mutable net_name : string;
  by_name : (string, int) Hashtbl.t;
}

let dummy_node = { gate = Gate.Input; nname = None }

let create ?(name = "net") () =
  {
    nodes = Vec.create ~dummy:dummy_node ();
    ins = [];
    outs = [];
    net_name = name;
    by_name = Hashtbl.create 64;
  }

let name t = t.net_name

let set_name t s = t.net_name <- s

let register_name t id = function
  | None -> ()
  | Some n -> Hashtbl.replace t.by_name n id

let add_input ?name t =
  let id = Vec.push t.nodes { gate = Gate.Input; nname = name } in
  t.ins <- id :: t.ins;
  register_name t id name;
  id

let add_gate ?name t g =
  let next = Vec.length t.nodes in
  (match g with
  | Gate.Input -> invalid_arg "Netlist.add_gate: use add_input for inputs"
  | Gate.And xs | Gate.Or xs ->
    if Array.length xs < 1 then invalid_arg "Netlist.add_gate: empty fanin list"
  | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.Xor _ -> ());
  Array.iter
    (fun x ->
      if x < 0 || x >= next then
        invalid_arg (Printf.sprintf "Netlist.add_gate: fanin %d out of range [0,%d)" x next))
    (Gate.fanins g);
  let id = Vec.push t.nodes { gate = g; nname = name } in
  register_name t id name;
  id

let size t = Vec.length t.nodes

let add_output t po_name driver =
  if driver < 0 || driver >= size t then
    invalid_arg (Printf.sprintf "Netlist.add_output: driver %d out of range" driver);
  t.outs <- (po_name, driver) :: t.outs

let gate t i = (Vec.get t.nodes i).gate

let node_name t i = (Vec.get t.nodes i).nname

let inputs t = Array.of_list (List.rev t.ins)

let outputs t = Array.of_list (List.rev t.outs)

let num_inputs t = List.length t.ins

let num_outputs t = List.length t.outs

let fanins t i = Gate.fanins (gate t i)

let is_input t i =
  match gate t i with
  | Gate.Input -> true
  | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ | Gate.Xor _ -> false

let gate_count t =
  Vec.fold
    (fun acc n ->
      match n.gate with
      | Gate.Input | Gate.Const _ -> acc
      | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ | Gate.Xor _ -> acc + 1)
    0 t.nodes

let iter_nodes f t = Vec.iteri (fun i n -> f i n.gate) t.nodes

let find_by_name t n = Hashtbl.find_opt t.by_name n

let copy t =
  {
    nodes = Vec.of_array ~dummy:dummy_node (Vec.to_array t.nodes);
    ins = t.ins;
    outs = t.outs;
    net_name = t.net_name;
    by_name = Hashtbl.copy t.by_name;
  }

let validate t =
  let n = size t in
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  iter_nodes
    (fun i g ->
      Array.iter
        (fun x -> if x < 0 || x >= i then fail "node %d has invalid fanin %d" i x)
        (Gate.fanins g);
      match g with
      | Gate.And xs | Gate.Or xs ->
        if Array.length xs < 1 then fail "node %d has empty fanins" i
      | Gate.Input | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.Xor _ -> ())
    t;
  List.iter
    (fun (po, d) -> if d < 0 || d >= n then fail "output %s has invalid driver %d" po d)
    t.outs;
  match !problem with
  | None -> Ok ()
  | Some msg -> Error msg
