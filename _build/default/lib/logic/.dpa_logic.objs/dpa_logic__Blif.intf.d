lib/logic/blif.mli: Netlist
