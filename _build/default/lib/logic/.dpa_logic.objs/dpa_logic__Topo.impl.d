lib/logic/topo.ml: Array Dpa_util Fun Gate List Netlist
