lib/logic/netstats.ml: Array Buffer Cone Dpa_util Gate Hashtbl List Netlist Option Printf Topo
