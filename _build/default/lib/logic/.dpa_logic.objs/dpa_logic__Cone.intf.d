lib/logic/cone.mli: Dpa_util Netlist
