lib/logic/netstats.mli: Netlist
