lib/logic/io.ml: Array Bool Buffer Gate Hashtbl List Netlist Printf String
