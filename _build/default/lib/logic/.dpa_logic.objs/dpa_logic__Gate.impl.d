lib/logic/gate.ml: Array Bool Format String
