lib/logic/builder.mli: Netlist
