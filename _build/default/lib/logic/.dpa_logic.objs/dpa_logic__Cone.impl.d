lib/logic/cone.ml: Array Dpa_util List Netlist
