lib/logic/eval.mli: Netlist
