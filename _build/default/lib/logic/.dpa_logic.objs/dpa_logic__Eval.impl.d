lib/logic/eval.ml: Array Gate Netlist Printf
