lib/logic/io.mli: Netlist
