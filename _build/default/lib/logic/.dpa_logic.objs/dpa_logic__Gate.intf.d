lib/logic/gate.mli: Format
