lib/logic/netlist.ml: Array Dpa_util Gate Hashtbl List Printf
