lib/logic/blif.ml: Array Bool Buffer Builder Gate Hashtbl List Netlist Printf String
