lib/logic/netlist.mli: Gate
