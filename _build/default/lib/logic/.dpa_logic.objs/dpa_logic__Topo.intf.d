lib/logic/topo.mli: Netlist
