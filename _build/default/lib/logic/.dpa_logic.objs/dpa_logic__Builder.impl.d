lib/logic/builder.ml: Array Gate Hashtbl List Netlist
