(** Combinational Boolean networks.

    A netlist is a DAG of {!Gate.t} nodes identified by dense integer ids
    (creation order, so every gate's fanins have smaller ids — the netlist
    is topologically ordered by construction). Primary outputs are named
    references to driver nodes. *)

type t

val create : ?name:string -> unit -> t

val name : t -> string

val set_name : t -> string -> unit

val add_input : ?name:string -> t -> int
(** Appends a primary input node and returns its id. *)

val add_gate : ?name:string -> t -> Gate.t -> int
(** Appends a gate. Raises [Invalid_argument] if a fanin id is not smaller
    than the new node's id (which would create a cycle or forward edge),
    or if an AND/OR has fewer than one fanin. *)

val add_output : t -> string -> int -> unit
(** [add_output t po_name driver] declares a named primary output. *)

val size : t -> int
(** Total number of nodes (inputs + gates). *)

val gate : t -> int -> Gate.t

val node_name : t -> int -> string option

val inputs : t -> int array
(** Primary input ids in declaration order. *)

val outputs : t -> (string * int) array
(** Primary outputs (name, driver id) in declaration order. *)

val num_inputs : t -> int

val num_outputs : t -> int

val fanins : t -> int -> int array

val is_input : t -> int -> bool

val gate_count : t -> int
(** Number of non-input, non-constant nodes. *)

val iter_nodes : (int -> Gate.t -> unit) -> t -> unit
(** Visits every node in id (= topological) order. *)

val find_by_name : t -> string -> int option
(** Looks up a node by its optional name (inputs and gates). *)

val copy : t -> t

val validate : t -> (unit, string) result
(** Checks fanin ranges, arities, and that output drivers exist. *)
