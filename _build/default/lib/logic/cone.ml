module Bitset = Dpa_util.Bitset

let of_node t root =
  let n = Netlist.size t in
  let cone = Bitset.create n in
  let rec visit i =
    if not (Bitset.mem cone i) then begin
      Bitset.add cone i;
      Array.iter visit (Netlist.fanins t i)
    end
  in
  visit root;
  cone

let of_outputs t =
  (* Memoize per-node cones bottom-up to share work across outputs. *)
  let n = Netlist.size t in
  let node_cones = Array.make n None in
  let rec cone_of i =
    match node_cones.(i) with
    | Some c -> c
    | None ->
      let c = Bitset.create n in
      Bitset.add c i;
      Array.iter (fun x -> Bitset.union_into c (cone_of x)) (Netlist.fanins t i);
      node_cones.(i) <- Some c;
      c
  in
  Array.map (fun (_, driver) -> Bitset.copy (cone_of driver)) (Netlist.outputs t)

let support t root =
  let cone = of_node t root in
  let acc = ref [] in
  Bitset.iter (fun i -> if Netlist.is_input t i then acc := i :: !acc) cone;
  Array.of_list (List.rev !acc)

let overlap a b =
  let da = Bitset.cardinal a and db = Bitset.cardinal b in
  if da + db = 0 then 0.0
  else float_of_int (Bitset.inter_cardinal a b) /. float_of_int (da + db)
