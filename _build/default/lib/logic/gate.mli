(** Gate functions of the technology-independent Boolean network.

    Fanins are node ids into the owning {!Netlist.t}. The network produced
    by the front end may contain inverters anywhere ([Not]); the domino
    flow later removes them by phase assignment and DeMorgan dualization. *)

type t =
  | Input  (** primary input *)
  | Const of bool
  | Buf of int
  | Not of int
  | And of int array  (** at least 2 fanins *)
  | Or of int array  (** at least 2 fanins *)
  | Xor of int * int
      (** kept by the front end for naturalness; decomposed into AND/OR/NOT
          before phase assignment (domino blocks are monotonic) *)

val fanins : t -> int array
(** Fanin ids, left to right; [||] for [Input] and [Const]. *)

val map_fanins : (int -> int) -> t -> t
(** Structure-preserving fanin renaming. *)

val eval : t -> (int -> bool) -> bool
(** [eval g lookup] computes the gate output given fanin values. [Input]
    and [Const b] evaluate to [false] and [b] respectively ([Input] values
    must be supplied by the caller before evaluation, see {!Eval}). *)

val dual : t -> t
(** DeMorgan dual: [And ↔ Or], fanins unchanged. [Not]/[Buf]/[Xor] have no
    dual in the monotone sense and raise [Invalid_argument]; the phase
    engine eliminates them before dualizing. *)

val arity : t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** E.g. [and(3,7,9)]. *)
