type t = {
  name : string;
  inputs : int;
  outputs : int;
  gates : int;
  gate_histogram : (string * int) list;
  max_depth : int;
  average_fanin : float;
  max_fanout : int;
  average_fanout : float;
  unused_inputs : int;
  dead_gates : int;
}

let gate_key = function
  | Gate.Input -> "input"
  | Gate.Const _ -> "const"
  | Gate.Buf _ -> "buf"
  | Gate.Not _ -> "not"
  | Gate.And xs -> Printf.sprintf "and%d" (Array.length xs)
  | Gate.Or xs -> Printf.sprintf "or%d" (Array.length xs)
  | Gate.Xor _ -> "xor"

let compute net =
  let histogram = Hashtbl.create 16 in
  let fanin_sum = ref 0 and gates = ref 0 in
  Netlist.iter_nodes
    (fun _ g ->
      match g with
      | Gate.Input | Gate.Const _ -> ()
      | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ | Gate.Xor _ ->
        incr gates;
        fanin_sum := !fanin_sum + Gate.arity g;
        let key = gate_key g in
        Hashtbl.replace histogram key
          (1 + Option.value ~default:0 (Hashtbl.find_opt histogram key)))
    net;
  let fanouts = Topo.fanout_counts net in
  let readers = Array.to_list fanouts |> List.filter (fun c -> c > 0) in
  let max_fanout = Array.fold_left max 0 fanouts in
  let average_fanout =
    match readers with
    | [] -> 0.0
    | _ ->
      float_of_int (List.fold_left ( + ) 0 readers) /. float_of_int (List.length readers)
  in
  let unused_inputs =
    Array.fold_left
      (fun acc id -> if fanouts.(id) = 0 then acc + 1 else acc)
      0 (Netlist.inputs net)
  in
  let live = Dpa_util.Bitset.create (Netlist.size net) in
  Array.iter
    (fun cone -> Dpa_util.Bitset.union_into live cone)
    (Cone.of_outputs net);
  let dead_gates = ref 0 in
  Netlist.iter_nodes
    (fun i g ->
      match g with
      | Gate.Input | Gate.Const _ -> ()
      | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ | Gate.Xor _ ->
        if not (Dpa_util.Bitset.mem live i) then incr dead_gates)
    net;
  let gate_histogram =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram []
    |> List.sort (fun (ka, va) (kb, vb) ->
           match compare vb va with 0 -> compare ka kb | c -> c)
  in
  {
    name = Netlist.name net;
    inputs = Netlist.num_inputs net;
    outputs = Netlist.num_outputs net;
    gates = !gates;
    gate_histogram;
    max_depth = Topo.max_level net;
    average_fanin =
      (if !gates = 0 then 0.0 else float_of_int !fanin_sum /. float_of_int !gates);
    max_fanout;
    average_fanout;
    unused_inputs;
    dead_gates = !dead_gates;
  }

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %d inputs (%d unused), %d outputs, %d gates (%d dead)\n" t.name
       t.inputs t.unused_inputs t.outputs t.gates t.dead_gates);
  Buffer.add_string buf
    (Printf.sprintf "depth %d, avg fanin %.2f, fanout avg %.2f / max %d\n" t.max_depth
       t.average_fanin t.average_fanout t.max_fanout);
  Buffer.add_string buf "gate mix:";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s:%d" k v))
    t.gate_histogram;
  Buffer.add_string buf "\n";
  Buffer.contents buf
