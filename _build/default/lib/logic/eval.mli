(** Reference evaluation of netlists on Boolean vectors.

    Used as the functional-correctness oracle throughout the test suite:
    every transformation (optimization, inverter removal, domino mapping)
    must preserve the values computed here. *)

val all_nodes : Netlist.t -> bool array -> bool array
(** [all_nodes t vec] evaluates every node; [vec] supplies primary-input
    values in declaration order. Raises [Invalid_argument] on a length
    mismatch. *)

val outputs : Netlist.t -> bool array -> bool array
(** Primary-output values in declaration order. *)

val output_table : Netlist.t -> bool array array
(** Exhaustive truth table: row per input minterm (input 0 is the least
    significant bit), column per output. Only for small supports; raises
    [Invalid_argument] beyond 20 inputs. *)

val exact_probabilities : Netlist.t -> float array -> float array
(** Exact signal probability of every node by exhaustive enumeration,
    weighting each minterm by the product of input probabilities. The
    brute-force oracle for {!Dpa_bdd.Probability}. Raises beyond 20
    inputs. *)
