type t =
  | Input
  | Const of bool
  | Buf of int
  | Not of int
  | And of int array
  | Or of int array
  | Xor of int * int

let fanins = function
  | Input | Const _ -> [||]
  | Buf x | Not x -> [| x |]
  | And xs | Or xs -> Array.copy xs
  | Xor (a, b) -> [| a; b |]

let map_fanins f = function
  | Input -> Input
  | Const b -> Const b
  | Buf x -> Buf (f x)
  | Not x -> Not (f x)
  | And xs -> And (Array.map f xs)
  | Or xs -> Or (Array.map f xs)
  | Xor (a, b) -> Xor (f a, f b)

let eval g lookup =
  match g with
  | Input -> false
  | Const b -> b
  | Buf x -> lookup x
  | Not x -> not (lookup x)
  | And xs -> Array.for_all lookup xs
  | Or xs -> Array.exists lookup xs
  | Xor (a, b) -> lookup a <> lookup b

let dual = function
  | And xs -> Or xs
  | Or xs -> And xs
  | (Input | Const _ | Buf _ | Not _ | Xor _) as g ->
    ignore g;
    invalid_arg "Gate.dual: only AND/OR gates have a DeMorgan dual"

let arity g = Array.length (fanins g)

let equal a b =
  match a, b with
  | Input, Input -> true
  | Const x, Const y -> x = y
  | Buf x, Buf y | Not x, Not y -> x = y
  | And xs, And ys | Or xs, Or ys -> xs = ys
  | Xor (a1, b1), Xor (a2, b2) -> a1 = a2 && b1 = b2
  | (Input | Const _ | Buf _ | Not _ | And _ | Or _ | Xor _), _ -> false

let pp ppf g =
  let ids xs = String.concat "," (Array.to_list (Array.map string_of_int xs)) in
  match g with
  | Input -> Format.fprintf ppf "input"
  | Const b -> Format.fprintf ppf "const%d" (Bool.to_int b)
  | Buf x -> Format.fprintf ppf "buf(%d)" x
  | Not x -> Format.fprintf ppf "not(%d)" x
  | And xs -> Format.fprintf ppf "and(%s)" (ids xs)
  | Or xs -> Format.fprintf ppf "or(%s)" (ids xs)
  | Xor (a, b) -> Format.fprintf ppf "xor(%d,%d)" a b
