(** Transitive fanin cones and cone overlap.

    The paper's duplication-risk measure is
    [O(i,j) = |Di ∩ Dj| / (|Di| + |Dj|)] where [Di] is the set of nodes in
    the transitive fanin of primary output [i] (§4.1). *)

val of_node : Netlist.t -> int -> Dpa_util.Bitset.t
(** All nodes in the transitive fanin of a node, including the node itself
    and any primary inputs reached. *)

val of_outputs : Netlist.t -> Dpa_util.Bitset.t array
(** Cone per primary output (declaration order), computed in one pass. *)

val support : Netlist.t -> int -> int array
(** Primary inputs in the transitive fanin of a node, ascending. *)

val overlap : Dpa_util.Bitset.t -> Dpa_util.Bitset.t -> float
(** [O(i,j) = |Di ∩ Dj| / (|Di| + |Dj|)]; 0 when both cones are empty. *)
