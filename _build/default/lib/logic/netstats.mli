(** Structural statistics of a netlist, for reports and the CLI [info]
    command. *)

type t = {
  name : string;
  inputs : int;
  outputs : int;
  gates : int;
  gate_histogram : (string * int) list;
      (** e.g. [("and3", 12); ("not", 7)], sorted by descending count *)
  max_depth : int;
  average_fanin : float;  (** over gates *)
  max_fanout : int;
  average_fanout : float;  (** over nodes with at least one reader *)
  unused_inputs : int;
  dead_gates : int;  (** gates outside every output cone *)
}

val compute : Netlist.t -> t

val to_string : t -> string
(** Multi-line human-readable rendering. *)
