(** Topological structure of a netlist.

    Ids are already topologically ordered by construction; this module adds
    levels, fanout information and the traversal order needed by the BDD
    variable-ordering heuristic (paper §4.2.2). *)

val order : Netlist.t -> int array
(** All node ids in topological (= id) order. *)

val levels : Netlist.t -> int array
(** [levels t].(i) is the longest-path depth of node [i]; inputs and
    constants are level 0. *)

val fanout_counts : Netlist.t -> int array
(** Number of gate fanouts per node (output references not counted). *)

val fanouts : Netlist.t -> int array array
(** [fanouts t].(i) lists the gates reading node [i], ascending. *)

val max_level : Netlist.t -> int

val fanout_cone_sizes : Netlist.t -> int array
(** [fanout_cone_sizes t].(i) is the number of nodes in the transitive
    fanout of node [i], excluding [i] itself. *)

val gate_traversal : Netlist.t -> int array
(** Non-input nodes in ascending level order; gates at the same level are
    visited in decreasing fanout-cone cardinality (ties by id) — the
    traversal prescribed by the paper for deriving the BDD variable
    order. *)
