(** Structurally-hashed netlist construction.

    The builder interns gates so that structurally identical subexpressions
    share one node, performs constant folding, collapses double inverters,
    and canonicalizes AND/OR fanin lists (sort + dedup + complement
    detection). This is the "common subexpression sharing" half of the
    technology-independent front end. *)

type t

val create : ?name:string -> unit -> t

val input : ?name:string -> t -> int

val const : t -> bool -> int

val not_ : t -> int -> int

val and_ : t -> int list -> int
(** n-ary AND; simplification may return an existing node or a constant. *)

val or_ : t -> int list -> int

val xor_ : t -> int -> int -> int

val output : t -> string -> int -> unit

val finish : t -> Netlist.t
(** The accumulated netlist. The builder remains usable; the result shares
    structure with subsequent additions, so callers normally finish once. *)
