type key =
  | Knot of int
  | Kand of int list
  | Kor of int list
  | Kxor of int * int

type t = {
  net : Netlist.t;
  interned : (key, int) Hashtbl.t;
  mutable const_true : int option;
  mutable const_false : int option;
}

let create ?name () = { net = Netlist.create ?name (); interned = Hashtbl.create 64; const_true = None; const_false = None }

let input ?name t = Netlist.add_input ?name t.net

let const t b =
  let cached = if b then t.const_true else t.const_false in
  match cached with
  | Some id -> id
  | None ->
    let id = Netlist.add_gate t.net (Gate.Const b) in
    if b then t.const_true <- Some id else t.const_false <- Some id;
    id

let is_const t i =
  match Netlist.gate t.net i with
  | Gate.Const b -> Some b
  | Gate.Input | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ | Gate.Xor _ -> None

(* If node [i] is an inverter, the id it complements. *)
let inverted_of t i =
  match Netlist.gate t.net i with
  | Gate.Not x -> Some x
  | Gate.Input | Gate.Const _ | Gate.Buf _ | Gate.And _ | Gate.Or _ | Gate.Xor _ -> None

let intern t key mk =
  match Hashtbl.find_opt t.interned key with
  | Some id -> id
  | None ->
    let id = mk () in
    Hashtbl.replace t.interned key id;
    id

let not_ t x =
  match is_const t x with
  | Some b -> const t (not b)
  | None -> (
    match inverted_of t x with
    | Some y -> y
    | None -> intern t (Knot x) (fun () -> Netlist.add_gate t.net (Gate.Not x)))

(* Canonicalize an AND/OR fanin list: fold constants, sort, dedup, and
   detect complementary pairs. [absorbing] is the constant that forces the
   result (false for AND, true for OR). *)
type canon = Forced of bool | Operands of int list

let canonicalize t ~absorbing xs =
  let rec fold acc = function
    | [] -> Operands acc
    | x :: rest -> (
      match is_const t x with
      | Some b when b = absorbing -> Forced absorbing
      | Some _ -> fold acc rest (* identity element: drop *)
      | None -> fold (x :: acc) rest)
  in
  match fold [] xs with
  | Forced b -> Forced b
  | Operands ops -> (
    let ops = List.sort_uniq compare ops in
    let complementary =
      List.exists
        (fun x ->
          match inverted_of t x with
          | Some y -> List.mem y ops
          | None -> false)
        ops
    in
    if complementary then Forced absorbing else Operands ops)

let nary t ~absorbing ~mk_key ~mk_gate xs =
  if xs = [] then invalid_arg "Builder: empty operand list";
  match canonicalize t ~absorbing xs with
  | Forced b -> const t b
  | Operands [] -> const t (not absorbing) (* all operands were identity constants *)
  | Operands [ x ] -> x
  | Operands ops ->
    intern t (mk_key ops) (fun () -> Netlist.add_gate t.net (mk_gate (Array.of_list ops)))

let and_ t xs =
  nary t ~absorbing:false ~mk_key:(fun ops -> Kand ops) ~mk_gate:(fun a -> Gate.And a) xs

let or_ t xs =
  nary t ~absorbing:true ~mk_key:(fun ops -> Kor ops) ~mk_gate:(fun a -> Gate.Or a) xs

let xor_ t a b =
  match is_const t a, is_const t b with
  | Some x, Some y -> const t (x <> y)
  | Some true, None -> not_ t b
  | Some false, None -> b
  | None, Some true -> not_ t a
  | None, Some false -> a
  | None, None ->
    if a = b then const t false
    else begin
      let lo = min a b and hi = max a b in
      match inverted_of t lo, inverted_of t hi with
      | Some x, _ when x = hi -> const t true
      | _, Some y when y = lo -> const t true
      | _, _ -> intern t (Kxor (lo, hi)) (fun () -> Netlist.add_gate t.net (Gate.Xor (lo, hi)))
    end

let output t name driver = Netlist.add_output t.net name driver

let finish t = t.net
