let all_nodes t vec =
  let ins = Netlist.inputs t in
  if Array.length vec <> Array.length ins then
    invalid_arg
      (Printf.sprintf "Eval.all_nodes: %d values for %d inputs" (Array.length vec)
         (Array.length ins));
  let values = Array.make (Netlist.size t) false in
  Array.iteri (fun k id -> values.(id) <- vec.(k)) ins;
  Netlist.iter_nodes
    (fun i g ->
      match g with
      | Gate.Input -> ()
      | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ | Gate.Xor _ ->
        values.(i) <- Gate.eval g (fun x -> values.(x)))
    t;
  values

let outputs t vec =
  let values = all_nodes t vec in
  Array.map (fun (_, d) -> values.(d)) (Netlist.outputs t)

let check_enumerable t =
  let n = Netlist.num_inputs t in
  if n > 20 then invalid_arg (Printf.sprintf "Eval: %d inputs is too many to enumerate" n);
  n

let minterm_vector n m = Array.init n (fun k -> (m lsr k) land 1 = 1)

let output_table t =
  let n = check_enumerable t in
  Array.init (1 lsl n) (fun m -> outputs t (minterm_vector n m))

let exact_probabilities t input_probs =
  let n = check_enumerable t in
  if Array.length input_probs <> n then
    invalid_arg "Eval.exact_probabilities: probability vector length mismatch";
  let probs = Array.make (Netlist.size t) 0.0 in
  for m = 0 to (1 lsl n) - 1 do
    let vec = minterm_vector n m in
    let weight = ref 1.0 in
    Array.iteri
      (fun k b -> weight := !weight *. (if b then input_probs.(k) else 1.0 -. input_probs.(k)))
      vec;
    let values = all_nodes t vec in
    Array.iteri (fun i v -> if v then probs.(i) <- probs.(i) +. !weight) values
  done;
  probs
