let order t = Array.init (Netlist.size t) Fun.id

let levels t =
  let n = Netlist.size t in
  let lv = Array.make n 0 in
  Netlist.iter_nodes
    (fun i g ->
      let fis = Gate.fanins g in
      if Array.length fis > 0 then
        lv.(i) <- 1 + Array.fold_left (fun m x -> max m lv.(x)) 0 fis)
    t;
  lv

let fanout_counts t =
  let counts = Array.make (Netlist.size t) 0 in
  Netlist.iter_nodes
    (fun _ g -> Array.iter (fun x -> counts.(x) <- counts.(x) + 1) (Gate.fanins g))
    t;
  counts

let fanouts t =
  let n = Netlist.size t in
  let lists = Array.make n [] in
  (* walk ids downward so each list ends up ascending *)
  for i = n - 1 downto 0 do
    Array.iter (fun x -> lists.(x) <- i :: lists.(x)) (Netlist.fanins t i)
  done;
  Array.map Array.of_list lists

let max_level t = Array.fold_left max 0 (levels t)

let fanout_cone_sizes t =
  let n = Netlist.size t in
  let fo = fanouts t in
  (* Transitive fanout as bitsets, computed in reverse topological order. *)
  let cones = Array.init n (fun _ -> Dpa_util.Bitset.create n) in
  for i = n - 1 downto 0 do
    Array.iter
      (fun reader ->
        Dpa_util.Bitset.add cones.(i) reader;
        Dpa_util.Bitset.union_into cones.(i) cones.(reader))
      fo.(i)
  done;
  Array.map Dpa_util.Bitset.cardinal cones

let gate_traversal t =
  let lv = levels t in
  let cone = fanout_cone_sizes t in
  let gates = ref [] in
  Netlist.iter_nodes
    (fun i g ->
      match g with
      | Gate.Input -> ()
      | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ | Gate.Xor _ ->
        gates := i :: !gates)
    t;
  let arr = Array.of_list (List.rev !gates) in
  let compare_gates a b =
    match compare lv.(a) lv.(b) with
    | 0 -> (
      match compare cone.(b) cone.(a) (* decreasing cone size *) with
      | 0 -> compare a b
      | c -> c)
    | c -> c
  in
  Array.sort compare_gates arr;
  arr
