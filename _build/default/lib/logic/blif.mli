(** Berkeley Logic Interchange Format (BLIF) import/export.

    The MCNC benchmarks the paper evaluates ([apex7], [frg1], [x1], [x3])
    are distributed as BLIF; this module lets users run the flow on the
    real circuits. The supported subset is the combinational and
    edge-triggered sequential core of the format:

    - [.model], [.inputs], [.outputs], [.end] (multi-line [\\]
      continuations allowed),
    - [.names] with a single-output cover: each row is input literals in
      [{0,1,-}] plus the output value [1] (on-set rows, OR of product
      terms) or [0] (off-set rows, complement of the OR),
    - [.latch input output \[type control\] \[init\]] for D flip-flops,
    - comments ([#]) and blank lines.

    Unsupported: [.subckt]/[.search] hierarchies, [.exdc], multiple
    models per file. *)

type latch = {
  data : int;  (** netlist node driving the D pin *)
  init : bool;  (** reset value; BLIF init 2/3 ("don't care"/unknown) maps to false *)
}

(** A parsed sequential model: the combinational core's inputs are the
    real primary inputs followed by one pseudo-input per latch (latch
    order), ready for [Dpa_seq.Seq_netlist.create]. *)
type sequential = {
  comb : Netlist.t;
  n_real_inputs : int;
  latches : latch array;
}

val of_string : string -> (Netlist.t, string) result
(** Parses a combinational model ([.latch] present is an error — use
    {!sequential_of_string}). Covers are built through the structurally
    hashed {!Builder}, so they become shared AND/OR/NOT logic. Errors
    carry a line number. *)

val sequential_of_string : string -> (sequential, string) result
(** Parses a model that may contain [.latch] statements. *)

val to_string : Netlist.t -> string
(** Exports as single-output [.names] covers (one per gate). Parsing the
    result yields a functionally equivalent netlist. *)

val sequential_to_string : sequential -> string
(** Exports a sequential model with [.latch] statements (type [re],
    control [clk], explicit init). [sequential_of_string] of the result
    yields an equivalent model. *)
