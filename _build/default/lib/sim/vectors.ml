let generate rng ~probs ~cycles =
  Array.init cycles (fun _ -> Array.map (fun p -> Dpa_util.Rng.bernoulli rng p) probs)

let empirical_probs vectors =
  match Array.length vectors with
  | 0 -> [||]
  | n ->
    let width = Array.length vectors.(0) in
    let counts = Array.make width 0 in
    Array.iter
      (fun vec -> Array.iteri (fun k b -> if b then counts.(k) <- counts.(k) + 1) vec)
      vectors;
    Array.map (fun c -> float_of_int c /. float_of_int n) counts
