(** Statistically generated input vectors.

    The paper measures power "with statistically generated input vectors
    with the appropriate signal probabilities" — each primary input is an
    independent Bernoulli stream. *)

val generate :
  Dpa_util.Rng.t -> probs:float array -> cycles:int -> bool array array
(** [cycles] vectors of [Array.length probs] bits each. *)

val empirical_probs : bool array array -> float array
(** Per-column fraction of ones; the sanity check that generated vectors
    realize the requested probabilities. *)
