lib/sim/static_sim.mli: Dpa_logic Dpa_util
