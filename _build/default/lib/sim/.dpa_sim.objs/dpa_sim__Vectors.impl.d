lib/sim/vectors.ml: Array Dpa_util
