lib/sim/simulator.ml: Array Dpa_domino Dpa_logic Dpa_power Dpa_synth Dpa_util Queue
