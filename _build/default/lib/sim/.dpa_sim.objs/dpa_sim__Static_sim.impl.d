lib/sim/static_sim.ml: Array Dpa_logic Dpa_util
