lib/sim/simulator.mli: Dpa_domino Dpa_power Dpa_util
