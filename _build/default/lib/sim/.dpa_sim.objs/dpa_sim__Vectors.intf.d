lib/sim/vectors.mli: Dpa_util
