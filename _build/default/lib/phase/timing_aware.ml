module Netlist = Dpa_logic.Netlist

type config = {
  library : Dpa_domino.Library.t;
  input_probs : float array;
  clock : float;
  model : Dpa_timing.Delay.model;
  exhaustive_limit : int;
  pair_limit : int option;
}

let default_config ~input_probs ~clock =
  {
    library = Dpa_domino.Library.default;
    input_probs;
    clock;
    model = Dpa_timing.Delay.default;
    exhaustive_limit = 10;
    pair_limit = None;
  }

type result = {
  assignment : Dpa_synth.Phase.assignment;
  power : float;
  met : bool;
  delay : float;
  measurements : int;
}

let minimize config net =
  if config.clock <= 0.0 then invalid_arg "Timing_aware.minimize: clock must be positive";
  let n = Netlist.num_outputs net in
  if n = 0 then invalid_arg "Timing_aware.minimize: network has no outputs";
  (* Price after timing closure: resizing mutates the drives the power
     estimate then reads, so the sample reflects the silicon that would
     actually ship at this clock. *)
  let price mapped =
    let r = Dpa_timing.Resize.meet ~model:config.model ~clock:config.clock mapped in
    let report = Dpa_power.Estimate.of_mapped ~input_probs:config.input_probs mapped in
    {
      Measure.power =
        (if r.Dpa_timing.Resize.met then report.Dpa_power.Estimate.total else infinity);
      size = Dpa_domino.Mapped.size mapped;
      domino_switching = report.Dpa_power.Estimate.domino_switching;
    }
  in
  let measure =
    Measure.create ~library:config.library ~pricer:price ~input_probs:config.input_probs net
  in
  let assignment =
    if n <= config.exhaustive_limit then
      (Exhaustive.run measure ~num_outputs:n).Exhaustive.assignment
    else begin
      let cost = Cost.make net in
      let base_probs = Dpa_bdd.Build.probabilities ~input_probs:config.input_probs net in
      (Greedy.run ?pair_limit:config.pair_limit measure ~cost ~base_probs).Greedy.assignment
    end
  in
  (* final realization: resize once more to report the winner's delay *)
  let mapped = Measure.realize_mapped measure assignment in
  let r = Dpa_timing.Resize.meet ~model:config.model ~clock:config.clock mapped in
  let report = Dpa_power.Estimate.of_mapped ~input_probs:config.input_probs mapped in
  {
    assignment;
    power =
      (if r.Dpa_timing.Resize.met then report.Dpa_power.Estimate.total else infinity);
    met = r.Dpa_timing.Resize.met;
    delay = r.Dpa_timing.Resize.final_delay;
    measurements = Measure.evaluations measure;
  }
