(** The paper's greedy pairwise phase-assignment heuristic (§4.1, steps
    1–7):

    1. start from an arbitrary initial assignment;
    2. for every remaining pair of primary outputs evaluate the four
       action combinations under the cost function [K];
    3. take the pair/combination of global minimum cost;
    4–5. synthesize that candidate and measure its power;
    6. commit iff the measured power decreased, and remove the pair from
       the candidate set either way;
    7. repeat until the candidate set is empty.

    Retain/retain winners change nothing and are removed without paying
    for a measurement; when every remaining pair's best combination is
    retain/retain the search terminates early (no commit can change the
    averages any more). *)

type initial =
  [ `All_positive | `Random of Dpa_util.Rng.t | `Given of Dpa_synth.Phase.assignment ]

type step = {
  pair : int * int;
  actions : Cost.action * Cost.action;
  predicted_cost : float;
  measured_power : float option;  (** [None] when no synthesis was needed *)
  committed : bool;
}

type result = {
  assignment : Dpa_synth.Phase.assignment;
  power : float;
  size : int;
  initial_power : float;
  commits : int;
  steps : step list;  (** chronological *)
}

val run :
  ?initial:initial ->
  ?pair_limit:int ->
  Measure.t ->
  cost:Cost.t ->
  base_probs:float array ->
  result
(** [base_probs] are the node signal probabilities of the network as
    specified (all-positive implementation), feeding {!Cost.averages}.
    [pair_limit] caps the candidate set to the pairs with the largest
    predicted gain (an engineering knob for very wide circuits; unset =
    the paper's full pair set). *)
