(** Exhaustive phase search — optimal minimum-power assignment over all
    [2^n] phase combinations, feasible for circuits with few primary
    outputs. The paper's [frg1] has 3 outputs ("only 2³ or 8 possible
    phase assignments") yet still saves 34% power; this is the searcher
    that regime uses. *)

type result = {
  assignment : Dpa_synth.Phase.assignment;
  power : float;
  size : int;
  evaluated : int;
}

val run : Measure.t -> num_outputs:int -> result
(** Minimum power; ties broken by smaller size, then enumeration order.
    Raises [Invalid_argument] beyond 24 outputs. *)
