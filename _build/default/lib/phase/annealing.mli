(** Simulated-annealing phase search.

    The paper notes its pairwise heuristic "can be extended to capture a
    greater degree of interaction between phase assignments"; annealing
    over single-output flips is that extension — it explores multi-output
    interactions the pairwise cost cannot see, at the price of many more
    measurements. Used by the ablation bench as an upper-effort reference
    point. *)

type params = {
  steps : int;  (** proposal count *)
  initial_temperature : float;  (** in units of measured power *)
  cooling : float;  (** geometric factor per step, in (0,1) *)
}

val default_params : params
(** 400 steps, T₀ = 5% of the initial power, cooling 0.985. *)

type result = {
  assignment : Dpa_synth.Phase.assignment;
  power : float;
  size : int;
  accepted : int;
}

val run :
  ?params:params ->
  ?initial:Dpa_synth.Phase.assignment ->
  Dpa_util.Rng.t ->
  Measure.t ->
  num_outputs:int ->
  result
(** Tracks and returns the best assignment ever visited (not merely the
    final state). *)
