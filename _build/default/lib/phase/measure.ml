module Phase = Dpa_synth.Phase

type sample = {
  power : float;
  size : int;
  domino_switching : float;
}

type t = {
  net : Dpa_logic.Netlist.t;
  library : Dpa_domino.Library.t;
  input_probs : float array;
  pricer : t -> Dpa_domino.Mapped.t -> sample;
  cache : (string, sample) Hashtbl.t;
  mutable misses : int;
}

let default_price t mapped =
  let report = Dpa_power.Estimate.of_mapped ~input_probs:t.input_probs mapped in
  {
    power = report.Dpa_power.Estimate.total;
    size = Dpa_domino.Mapped.size mapped;
    domino_switching = report.Dpa_power.Estimate.domino_switching;
  }

let create ?(library = Dpa_domino.Library.default) ?pricer ~input_probs net =
  if not (Dpa_synth.Opt.is_domino_ready net) then
    invalid_arg "Measure.create: netlist contains XOR; run Opt.optimize first";
  if Array.length input_probs <> Dpa_logic.Netlist.num_inputs net then
    invalid_arg "Measure.create: input_probs length mismatch";
  let pricer =
    match pricer with
    | Some f -> fun _ mapped -> f mapped
    | None -> default_price
  in
  { net; library; input_probs; pricer; cache = Hashtbl.create 64; misses = 0 }

let realize_mapped t assignment =
  Dpa_domino.Mapped.map ~library:t.library (Dpa_synth.Inverterless.realize t.net assignment)

let eval t assignment =
  let key = Phase.to_string assignment in
  match Hashtbl.find_opt t.cache key with
  | Some s -> s
  | None ->
    t.misses <- t.misses + 1;
    let s = t.pricer t (realize_mapped t assignment) in
    Hashtbl.replace t.cache key s;
    s

let evaluations t = t.misses
