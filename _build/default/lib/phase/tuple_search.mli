(** The paper's §4.1 extension: "this heuristic can be extended to capture
    a greater degree of interaction between phase assignments by extending
    the definition of the cost function K to more than a pair of outputs.
    If the cost function is extended to all of the primary outputs in the
    circuit, the heuristic essentially reduces to a greedily ordered
    exhaustive search."

    [run ~k] generalizes {!Greedy} from pairs to k-subsets: every
    candidate tuple is scored by the best of its [2^k] action vectors
    under {!Cost.k_tuple}; the global minimum is synthesized, measured
    and committed only on improvement; the tuple leaves the candidate set
    either way. [k = 2] recovers the paper's pairwise heuristic;
    [k = num_outputs] is the greedily ordered exhaustive search. *)

type result = {
  assignment : Dpa_synth.Phase.assignment;
  power : float;
  size : int;
  initial_power : float;
  commits : int;
  tuples_considered : int;
}

val run :
  ?initial:Greedy.initial ->
  ?tuple_limit:int ->
  ?vectors_per_tuple:int ->
  k:int ->
  Measure.t ->
  cost:Cost.t ->
  base_probs:float array ->
  result
(** [tuple_limit] caps the candidate set to the tuples with the largest
    predicted gain (default 5000 — [C(n,k)] grows quickly).
    [vectors_per_tuple] (default 1) measures that many K-ranked action
    vectors of the chosen tuple instead of only the argmin — with
    [k = num_outputs] and a large value this is literally the greedily
    ordered exhaustive search. Raises [Invalid_argument] unless
    [2 ≤ k ≤ num_outputs]. *)
