lib/phase/optimizer.ml: Annealing Cost Dpa_bdd Dpa_domino Dpa_logic Dpa_synth Dpa_util Exhaustive Greedy Measure Printf
