lib/phase/cost.mli: Dpa_logic Dpa_synth
