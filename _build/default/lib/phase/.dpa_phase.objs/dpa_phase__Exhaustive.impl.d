lib/phase/exhaustive.ml: Dpa_synth Measure Seq
