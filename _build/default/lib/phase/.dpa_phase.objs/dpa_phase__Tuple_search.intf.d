lib/phase/tuple_search.mli: Cost Dpa_synth Greedy Measure
