lib/phase/timing_aware.ml: Cost Dpa_bdd Dpa_domino Dpa_logic Dpa_power Dpa_synth Dpa_timing Exhaustive Greedy Measure
