lib/phase/measure.mli: Dpa_domino Dpa_logic Dpa_synth
