lib/phase/optimizer.mli: Annealing Dpa_domino Dpa_logic Dpa_synth
