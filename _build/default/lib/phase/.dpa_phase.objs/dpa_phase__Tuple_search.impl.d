lib/phase/tuple_search.ml: Array Cost Dpa_synth List Measure Printf
