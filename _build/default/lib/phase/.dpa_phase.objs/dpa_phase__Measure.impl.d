lib/phase/measure.ml: Array Dpa_domino Dpa_logic Dpa_power Dpa_synth Hashtbl
