lib/phase/annealing.ml: Array Dpa_synth Dpa_util Float Measure
