lib/phase/exhaustive.mli: Dpa_synth Measure
