lib/phase/greedy.mli: Cost Dpa_synth Dpa_util Measure
