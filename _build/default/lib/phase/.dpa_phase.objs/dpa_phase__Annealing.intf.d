lib/phase/annealing.mli: Dpa_synth Dpa_util Measure
