lib/phase/greedy.ml: Array Cost Dpa_synth Dpa_util List Measure
