lib/phase/cost.ml: Array Dpa_logic Dpa_synth Dpa_util List
