module Phase = Dpa_synth.Phase
module Rng = Dpa_util.Rng

type params = {
  steps : int;
  initial_temperature : float;
  cooling : float;
}

let default_params = { steps = 400; initial_temperature = 0.05; cooling = 0.985 }

type result = {
  assignment : Phase.assignment;
  power : float;
  size : int;
  accepted : int;
}

let run ?(params = default_params) ?initial rng measure ~num_outputs =
  if num_outputs < 1 then invalid_arg "Annealing.run: no outputs";
  let current =
    ref (match initial with Some a -> Array.copy a | None -> Phase.all_positive num_outputs)
  in
  let current_power = ref (Measure.eval measure !current).Measure.power in
  let best = ref (Array.copy !current) in
  let best_sample = ref (Measure.eval measure !current) in
  let temperature = ref (params.initial_temperature *. Float.max !current_power 1e-9) in
  let accepted = ref 0 in
  for _ = 1 to params.steps do
    let k = Rng.int rng num_outputs in
    let proposed = Phase.flip_at !current k in
    let sample = Measure.eval measure proposed in
    let delta = sample.Measure.power -. !current_power in
    let accept =
      delta < 0.0
      || (!temperature > 0.0 && Rng.float rng 1.0 < exp (-.delta /. !temperature))
    in
    if accept then begin
      incr accepted;
      current := proposed;
      current_power := sample.Measure.power;
      if
        sample.Measure.power < !best_sample.Measure.power
        || (sample.Measure.power = !best_sample.Measure.power
            && sample.Measure.size < !best_sample.Measure.size)
      then begin
        best := proposed;
        best_sample := sample
      end
    end;
    temperature := !temperature *. params.cooling
  done;
  {
    assignment = !best;
    power = !best_sample.Measure.power;
    size = !best_sample.Measure.size;
    accepted = !accepted;
  }
