(** Timing-integrated phase assignment — the future direction the paper
    closes with ("integrating the choice of phase assignment with timing
    optimization. We believe that such a combination will lead to even
    greater power savings").

    The sequential flow of Table 2 picks phases for unsized power and only
    then resizes for timing; this optimizer instead prices every candidate
    assignment {e after} timing closure: realize → map → resize to the
    clock → estimate power with the final drives. Assignments whose
    critical path cannot close pay an infinite price, so the search
    optimizes true post-closure power and never trades into a timing
    violation. *)

type config = {
  library : Dpa_domino.Library.t;
  input_probs : float array;
  clock : float;
  model : Dpa_timing.Delay.model;
  exhaustive_limit : int;
  pair_limit : int option;
}

val default_config : input_probs:float array -> clock:float -> config
(** Default library and delay model, exhaustive up to 10 outputs. *)

type result = {
  assignment : Dpa_synth.Phase.assignment;
  power : float;  (** post-resize power; [infinity] if nothing closes *)
  met : bool;
  delay : float;  (** post-resize critical delay of the winner *)
  measurements : int;
}

val minimize : config -> Dpa_logic.Netlist.t -> result
(** The netlist must be domino-ready. *)
