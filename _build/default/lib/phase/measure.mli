(** Ground-truth power measurement of a candidate phase assignment:
    realize the inverter-free block, map it onto the domino library, and
    run the BDD power estimator. Results are memoized per assignment, so a
    search never pays twice for the same candidate. *)

type sample = {
  power : float;  (** Estimate total: domino + boundary inverters *)
  size : int;  (** standard-cell count of the mapped block *)
  domino_switching : float;
}

type t

val create :
  ?library:Dpa_domino.Library.t ->
  ?pricer:(Dpa_domino.Mapped.t -> sample) ->
  input_probs:float array ->
  Dpa_logic.Netlist.t ->
  t
(** The netlist must be domino-ready (no XOR). [pricer] overrides how a
    mapped block is turned into a sample — the default is the BDD power
    estimate and the plain cell count; the timing-integrated optimizer
    substitutes a price-after-resizing pricer. *)

val eval : t -> Dpa_synth.Phase.assignment -> sample

val evaluations : t -> int
(** Number of {e distinct} assignments measured so far (cache misses). *)

val realize_mapped : t -> Dpa_synth.Phase.assignment -> Dpa_domino.Mapped.t
(** The mapped block for an assignment (not cached). *)
