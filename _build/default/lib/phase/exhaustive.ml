module Phase = Dpa_synth.Phase

type result = {
  assignment : Phase.assignment;
  power : float;
  size : int;
  evaluated : int;
}

let run measure ~num_outputs =
  let best = ref None in
  let evaluated = ref 0 in
  Seq.iter
    (fun a ->
      let s = Measure.eval measure a in
      incr evaluated;
      let better =
        match !best with
        | None -> true
        | Some (_, bs) ->
          s.Measure.power < bs.Measure.power
          || (s.Measure.power = bs.Measure.power && s.Measure.size < bs.Measure.size)
      in
      if better then best := Some (a, s))
    (Phase.enumerate ~num_outputs);
  match !best with
  | None -> invalid_arg "Exhaustive.run: no outputs to assign"
  | Some (a, s) ->
    { assignment = a; power = s.Measure.power; size = s.Measure.size; evaluated = !evaluated }
