(** Minimum feedback vertex set heuristics (paper §4.2.1, Figs. 8–9).

    Exact MFVS is NP-complete; the classical testing-domain reductions of
    Fig. 8 shrink the s-graph without losing optimality:
    - a vertex with no predecessors or no successors is never on a cycle
      (remove it);
    - a vertex with a self-loop must be in every FVS (take it, remove it);
    - a vertex with exactly one predecessor or one successor can be
      bypassed (any cycle through it goes through its unique neighbour).

    The paper's {e enhancement} for domino circuits (Fig. 9): phase
    assignment duplicates logic, so many flip-flops share identical fanins
    and fanouts; grouping them into weighted supervertices unlocks further
    reductions. Supervertices are processed in {e descending weight}
    order, so heavy groups meet the degree reductions first and get
    bypassed ("Ignore AEB" in Fig. 9) while light ones absorb the forced
    self-loops — on the Fig. 9 graph this yields the FVS [{C,D}] of
    weight 2 rather than [{A,B,E}] of weight 3. *)

type result = {
  fvs : int list;  (** original flip-flop indices, ascending *)
  supervertices : int list list;
      (** member groups formed by the symmetry transformation (groups of
          size ≥ 2 only) *)
  greedy_picks : int;  (** vertices chosen by greedy (not forced) *)
}

val reduce : Sgraph.t -> int list
(** Applies the Fig. 8 reductions in place until fixpoint; returns the
    (member) vertices forced into the FVS by self-loops. *)

val symmetrize : Sgraph.t -> int list list
(** One pass of the Fig. 9 transformation in place: groups alive vertices
    with identical predecessor and successor sets into supervertices.
    Returns the member groups merged (size ≥ 2). *)

val solve : ?symmetry:bool -> Sgraph.t -> result
(** Full heuristic on a copy of the graph: alternate reductions and
    (optionally) symmetrization to fixpoint; when stalled, greedily pick
    the vertex breaking the most cycles per flip-flop (largest in×out
    degree product, ties by lower weight) and repeat. [symmetry] defaults
    to [true]. *)

val is_feedback_vertex_set : Sgraph.t -> int list -> bool
(** Checks that deleting the given vertices leaves the graph acyclic
    (operates on a copy). Vertices must name original (weight-1) members
    of an unreduced graph. *)
