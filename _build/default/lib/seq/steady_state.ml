module Netlist = Dpa_logic.Netlist

type result = {
  state_probs : float array;
  ff_probs : float array;
  node_probs : float array;
  iterations : int;
}

let analyze ?(max_iterations = 10_000) ?(tolerance = 1e-9) ~input_probs sn =
  let n_ff = Seq_netlist.n_ffs sn in
  let n_in = Seq_netlist.n_real_inputs sn in
  if n_ff > 16 || n_in > 16 || n_ff + n_in > 20 then
    invalid_arg "Steady_state.analyze: state or input space too large to enumerate";
  if Array.length input_probs <> n_in then
    invalid_arg "Steady_state.analyze: input_probs length mismatch";
  let core = Seq_netlist.comb sn in
  let flops = Seq_netlist.ffs sn in
  let n_states = 1 lsl n_ff in
  let n_minterms = 1 lsl n_in in
  let minterm_prob = Array.make n_minterms 1.0 in
  for m = 0 to n_minterms - 1 do
    for k = 0 to n_in - 1 do
      let p = input_probs.(k) in
      minterm_prob.(m) <-
        minterm_prob.(m) *. (if (m lsr k) land 1 = 1 then p else 1.0 -. p)
    done
  done;
  let core_vec = Array.make (n_in + n_ff) false in
  let eval state m =
    for k = 0 to n_in - 1 do
      core_vec.(k) <- (m lsr k) land 1 = 1
    done;
    for k = 0 to n_ff - 1 do
      core_vec.(n_in + k) <- (state lsr k) land 1 = 1
    done;
    Dpa_logic.Eval.all_nodes core core_vec
  in
  (* dense successor table: next.(state).(minterm) *)
  let next = Array.make_matrix n_states n_minterms 0 in
  for s = 0 to n_states - 1 do
    for m = 0 to n_minterms - 1 do
      let values = eval s m in
      let s' = ref 0 in
      Array.iteri
        (fun k ff -> if values.(ff.Seq_netlist.data) then s' := !s' lor (1 lsl k))
        flops;
      next.(s).(m) <- !s'
    done
  done;
  (* lazy power iteration: T' = (T + I)/2 keeps the stationary
     distribution and converges even for periodic chains (a one-hot ring
     is periodic) *)
  let reset =
    Array.to_list (Array.mapi (fun k ff -> if ff.Seq_netlist.init then 1 lsl k else 0) flops)
    |> List.fold_left ( lor ) 0
  in
  let dist = Array.make n_states 0.0 in
  dist.(reset) <- 1.0;
  let iterations = ref 0 in
  let delta = ref infinity in
  while !delta > tolerance && !iterations < max_iterations do
    incr iterations;
    let dist' = Array.make n_states 0.0 in
    for s = 0 to n_states - 1 do
      if dist.(s) > 0.0 then begin
        dist'.(s) <- dist'.(s) +. (0.5 *. dist.(s));
        for m = 0 to n_minterms - 1 do
          let s' = next.(s).(m) in
          dist'.(s') <- dist'.(s') +. (0.5 *. dist.(s) *. minterm_prob.(m))
        done
      end
    done;
    delta := 0.0;
    for s = 0 to n_states - 1 do
      delta := !delta +. Float.abs (dist'.(s) -. dist.(s));
      dist.(s) <- dist'.(s)
    done
  done;
  let ff_probs = Array.make n_ff 0.0 in
  for s = 0 to n_states - 1 do
    if dist.(s) > 0.0 then
      for k = 0 to n_ff - 1 do
        if (s lsr k) land 1 = 1 then ff_probs.(k) <- ff_probs.(k) +. dist.(s)
      done
  done;
  let node_probs = Array.make (Netlist.size core) 0.0 in
  for s = 0 to n_states - 1 do
    if dist.(s) > 1e-15 then
      for m = 0 to n_minterms - 1 do
        let w = dist.(s) *. minterm_prob.(m) in
        if w > 0.0 then begin
          let values = eval s m in
          Array.iteri (fun i v -> if v then node_probs.(i) <- node_probs.(i) +. w) values
        end
      done
  done;
  { state_probs = dist; ff_probs; node_probs; iterations = !iterations }
