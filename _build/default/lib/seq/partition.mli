(** Partitioning sequential circuits for signal-probability computation
    (paper §4.2.1, Figs. 6–7).

    Cutting the feedback vertex set turns a sequential circuit into an
    acyclic structure: cut flip-flops become free pseudo-inputs (assumed
    probability, default 0.5) while every remaining flip-flop passes the
    exact probability of its D input to its Q output in s-graph
    topological order — the fewer flip-flops are cut, the fewer nodes get
    the crude 0.5 assumption, which is why a small FVS ("Ideal
    Partitioning" in Fig. 7) yields better estimates. *)

type t = {
  fvs : int list;  (** flip-flops cut into pseudo-inputs *)
  ff_probs : float array;  (** steady Q probability per flip-flop *)
  node_probs : float array;  (** signal probability per core node *)
  iterations : int;  (** fixpoint refinement passes performed *)
}

val probabilities :
  ?symmetry:bool ->
  ?cut_prob:float ->
  ?refine:int ->
  input_probs:float array ->
  Seq_netlist.t ->
  t
(** [input_probs] covers the real primary inputs. [cut_prob] (default 0.5)
    seeds the cut flip-flops. [refine] (default 0) re-runs the propagation
    feeding each cut flip-flop its computed D probability — a fixpoint
    iteration the paper leaves as accuracy headroom. *)
