lib/seq/exact_mfvs.mli: Sgraph
