lib/seq/partition.mli: Seq_netlist
