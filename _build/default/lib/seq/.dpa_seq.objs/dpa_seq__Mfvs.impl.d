lib/seq/mfvs.ml: Hashtbl List Option Sgraph
