lib/seq/steady_state.ml: Array Dpa_logic Float List Seq_netlist
