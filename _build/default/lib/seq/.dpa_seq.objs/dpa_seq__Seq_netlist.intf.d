lib/seq/seq_netlist.mli: Dpa_logic
