lib/seq/seq_netlist.ml: Array Dpa_logic List Option Printf
