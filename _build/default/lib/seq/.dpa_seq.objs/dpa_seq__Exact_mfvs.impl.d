lib/seq/exact_mfvs.ml: Hashtbl List Queue Sgraph
