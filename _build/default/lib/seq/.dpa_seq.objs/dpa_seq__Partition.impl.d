lib/seq/partition.ml: Array Dpa_bdd Dpa_logic Hashtbl List Mfvs Queue Seq_netlist Sgraph
