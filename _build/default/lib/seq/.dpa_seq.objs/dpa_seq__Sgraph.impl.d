lib/seq/sgraph.ml: Array Dpa_logic Dpa_util Hashtbl Int List Queue Seq_netlist Set
