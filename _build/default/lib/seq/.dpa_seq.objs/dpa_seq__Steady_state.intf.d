lib/seq/steady_state.mli: Seq_netlist
