lib/seq/sgraph.mli: Seq_netlist
