lib/seq/mfvs.mli: Sgraph
