module IntSet = Set.Make (Int)

type t = {
  mutable succs : IntSet.t array;
  mutable preds : IntSet.t array;
  alive : bool array;
  weights : int array;
  member_lists : int list array;
}

let create n =
  {
    succs = Array.make n IntSet.empty;
    preds = Array.make n IntSet.empty;
    alive = Array.make n true;
    weights = Array.make n 1;
    member_lists = Array.init n (fun v -> [ v ]);
  }

let num_vertices t = Array.length t.alive

let check t v =
  if v < 0 || v >= num_vertices t then invalid_arg "Sgraph: vertex out of range"

let is_alive t v =
  check t v;
  t.alive.(v)

let require_alive t v = if not (is_alive t v) then invalid_arg "Sgraph: dead vertex"

let alive_vertices t =
  let acc = ref [] in
  for v = num_vertices t - 1 downto 0 do
    if t.alive.(v) then acc := v :: !acc
  done;
  !acc

let add_edge t u v =
  require_alive t u;
  require_alive t v;
  t.succs.(u) <- IntSet.add v t.succs.(u);
  t.preds.(v) <- IntSet.add u t.preds.(v)

let succ t v =
  require_alive t v;
  IntSet.elements t.succs.(v)

let pred t v =
  require_alive t v;
  IntSet.elements t.preds.(v)

let has_edge t u v =
  require_alive t u;
  require_alive t v;
  IntSet.mem v t.succs.(u)

let weight t v =
  require_alive t v;
  t.weights.(v)

let members t v =
  require_alive t v;
  t.member_lists.(v)

let detach t v =
  IntSet.iter (fun s -> t.preds.(s) <- IntSet.remove v t.preds.(s)) t.succs.(v);
  IntSet.iter (fun p -> t.succs.(p) <- IntSet.remove v t.succs.(p)) t.preds.(v);
  t.succs.(v) <- IntSet.empty;
  t.preds.(v) <- IntSet.empty

let delete t v =
  require_alive t v;
  detach t v;
  t.alive.(v) <- false

let bypass t v =
  require_alive t v;
  let ps = IntSet.remove v t.preds.(v) and ss = IntSet.remove v t.succs.(v) in
  delete t v;
  IntSet.iter (fun p -> IntSet.iter (fun s -> add_edge t p s) ss) ps

let merge t ~into v =
  require_alive t into;
  require_alive t v;
  if into = v then invalid_arg "Sgraph.merge: cannot merge a vertex into itself";
  let ps = IntSet.remove v t.preds.(v) and ss = IntSet.remove v t.succs.(v) in
  t.weights.(into) <- t.weights.(into) + t.weights.(v);
  t.member_lists.(into) <- t.member_lists.(into) @ t.member_lists.(v);
  delete t v;
  IntSet.iter (fun p -> if p <> into then add_edge t p into) ps;
  IntSet.iter (fun s -> if s <> into then add_edge t into s) ss

let copy t =
  {
    succs = Array.copy t.succs;
    preds = Array.copy t.preds;
    alive = Array.copy t.alive;
    weights = Array.copy t.weights;
    member_lists = Array.copy t.member_lists;
  }

let is_acyclic t =
  (* Kahn's algorithm over alive vertices; a self-loop keeps its vertex's
     in-degree positive forever. *)
  let n = num_vertices t in
  let indeg = Array.make n 0 in
  let alive = alive_vertices t in
  List.iter (fun v -> indeg.(v) <- IntSet.cardinal t.preds.(v)) alive;
  let queue = Queue.create () in
  List.iter (fun v -> if indeg.(v) = 0 then Queue.add v queue) alive;
  let removed = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr removed;
    IntSet.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      t.succs.(v)
  done;
  !removed = List.length alive

let of_seq_netlist sn =
  let core = Seq_netlist.comb sn in
  let n = Seq_netlist.n_ffs sn in
  let g = create n in
  (* Q input node id → flip-flop index *)
  let q_index = Hashtbl.create n in
  for k = 0 to n - 1 do
    Hashtbl.replace q_index (Seq_netlist.ff_q_input sn k) k
  done;
  Array.iteri
    (fun v ff ->
      let cone = Dpa_logic.Cone.of_node core ff.Seq_netlist.data in
      Dpa_util.Bitset.iter
        (fun node ->
          match Hashtbl.find_opt q_index node with
          | Some u -> add_edge g u v
          | None -> ())
        cone)
    (Seq_netlist.ffs sn);
  g
