type result = {
  fvs : int list;
  weight : int;
  nodes_explored : int;
}

let weight_of g vertices =
  List.fold_left (fun acc v -> acc + Sgraph.weight g v) 0 vertices

(* Weight-safe reductions: self-loops are forced; sources/sinks vanish; a
   unit-in-degree vertex may be bypassed when its unique predecessor is no
   heavier (any optimal FVS using the vertex can swap to the predecessor),
   and symmetrically for unit out-degree. *)
let reduce g =
  let forced = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if Sgraph.is_alive g v then
          if Sgraph.has_edge g v v then begin
            forced := Sgraph.members g v @ !forced;
            Sgraph.delete g v;
            changed := true
          end
          else begin
            let preds = Sgraph.pred g v and succs = Sgraph.succ g v in
            match preds, succs with
            | [], _ | _, [] ->
              Sgraph.delete g v;
              changed := true
            | [ u ], _ when Sgraph.weight g u <= Sgraph.weight g v ->
              Sgraph.bypass g v;
              changed := true
            | _, [ u ] when Sgraph.weight g u <= Sgraph.weight g v ->
              Sgraph.bypass g v;
              changed := true
            | _ :: _, _ :: _ -> ()
          end)
      (Sgraph.alive_vertices g)
  done;
  !forced

(* Shortest directed cycle via BFS from every vertex; [] when acyclic. *)
let shortest_cycle g =
  let best = ref [] in
  let best_len = ref max_int in
  List.iter
    (fun start ->
      if List.length (Sgraph.succ g start) > 0 then begin
        (* BFS looking for a path back to [start] *)
        let parent = Hashtbl.create 16 in
        let queue = Queue.create () in
        List.iter
          (fun s ->
            if not (Hashtbl.mem parent s) then begin
              Hashtbl.replace parent s start;
              Queue.add s queue
            end)
          (Sgraph.succ g start);
        let found = ref false in
        while (not !found) && not (Queue.is_empty queue) do
          let v = Queue.pop queue in
          if v = start then found := true
          else
            List.iter
              (fun s ->
                if not (Hashtbl.mem parent s) then begin
                  Hashtbl.replace parent s v;
                  Queue.add s queue
                end)
              (Sgraph.succ g v)
        done;
        if !found then begin
          (* reconstruct start → … → start, collecting distinct vertices *)
          let rec back v acc =
            if v = start then acc else back (Hashtbl.find parent v) (v :: acc)
          in
          let cycle = start :: back (Hashtbl.find parent start) [] in
          if List.length cycle < !best_len then begin
            best := cycle;
            best_len := List.length cycle
          end
        end
      end)
    (Sgraph.alive_vertices g);
  !best

let solve ?(node_limit = 200_000) g0 =
  let explored = ref 0 in
  let exceeded = ref false in
  let incumbent = ref None in
  let incumbent_weight = ref max_int in
  let rec branch g picked picked_weight =
    if !exceeded then ()
    else begin
      incr explored;
      if !explored > node_limit then exceeded := true
      else begin
        let forced = reduce g in
        let picked = forced @ picked in
        let picked_weight =
          picked_weight + List.length forced (* members are weight-1 units *)
        in
        if picked_weight >= !incumbent_weight then ()
        else
          match shortest_cycle g with
          | [] ->
            incumbent := Some picked;
            incumbent_weight := picked_weight
          | cycle ->
            List.iter
              (fun v ->
                if picked_weight + Sgraph.weight g v < !incumbent_weight then begin
                  let g' = Sgraph.copy g in
                  let members = Sgraph.members g' v in
                  Sgraph.delete g' v;
                  branch g' (members @ picked) (picked_weight + List.length members)
                end)
              cycle
      end
    end
  in
  branch (Sgraph.copy g0) [] 0;
  if !exceeded then None
  else
    match !incumbent with
    | None -> None
    | Some picked ->
      Some
        {
          fvs = List.sort_uniq compare picked;
          weight = !incumbent_weight;
          nodes_explored = !explored;
        }
