(** Exact steady-state analysis of small sequential circuits.

    The partition-based probabilities of {!Partition} trade accuracy for
    tractability (cut flip-flops are assumed at 0.5, flip-flops are
    treated as independent). This module computes the ground truth for
    small state spaces by power iteration on the exact Markov chain over
    flip-flop states, with primary inputs drawn independently each cycle —
    the oracle against which the partition heuristic's accuracy is
    measured (see the bench's partition-accuracy study). *)

type result = {
  state_probs : float array;  (** stationary distribution, index = state
                                  bit-vector (ff 0 = LSB) *)
  ff_probs : float array;  (** marginal P(Q=1) per flip-flop *)
  node_probs : float array;  (** per core node, averaged over the
                                 stationary state distribution *)
  iterations : int;
}

val analyze :
  ?max_iterations:int ->
  ?tolerance:float ->
  input_probs:float array ->
  Seq_netlist.t ->
  result
(** Raises [Invalid_argument] beyond 16 flip-flops or 16 primary inputs
    (the chain is built by exhaustive enumeration). Power iteration runs
    from the circuit's reset state until the distribution moves less than
    [tolerance] in L1 (default 1e-9, at most [max_iterations] = 10_000
    steps). *)
