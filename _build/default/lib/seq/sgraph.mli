(** S-graphs: structural dependency graphs among flip-flops (paper §4.2.1,
    after Chakradhar, Balakrishnan & Agrawal, DAC'94).

    Vertex [v] stands for one or more flip-flops (a {e supervertex} after
    the symmetry transformation); an edge [u → v] means some flip-flop in
    [u] combinationally feeds the D pin of some flip-flop in [v]. The MFVS
    reductions delete and merge vertices in place. *)

type t

val create : int -> t
(** [create n] has vertices [0 … n-1], each alive with weight 1 and
    member set [{v}], and no edges. *)

val of_seq_netlist : Seq_netlist.t -> t
(** Structural s-graph: edge [u → v] iff FF [u]'s Q is in the transitive
    fanin of FF [v]'s D. *)

val add_edge : t -> int -> int -> unit
(** Idempotent; self-edges allowed. *)

val num_vertices : t -> int

val is_alive : t -> int -> bool

val alive_vertices : t -> int list

val succ : t -> int -> int list
(** Alive successors, ascending. *)

val pred : t -> int -> int list

val has_edge : t -> int -> int -> bool

val weight : t -> int -> int

val members : t -> int -> int list
(** Original flip-flop indices represented by the (super)vertex. *)

val delete : t -> int -> unit
(** Removes the vertex and all incident edges. *)

val bypass : t -> int -> unit
(** Removes the vertex, connecting every predecessor to every successor
    (the "Ignore X" reduction of Fig. 8); may create self-loops. *)

val merge : t -> into:int -> int -> unit
(** Folds a vertex into another: weights add, member lists concatenate,
    edge sets union. Used by the symmetry transformation (Fig. 9). *)

val copy : t -> t

val is_acyclic : t -> bool
(** Considering alive vertices only; self-loops count as cycles. *)
