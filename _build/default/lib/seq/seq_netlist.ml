module Netlist = Dpa_logic.Netlist

type ff = { data : int; init : bool }

type t = { core : Netlist.t; n_real : int; flops : ff array }

let create ~comb ~n_real_inputs ~ffs =
  let expected = n_real_inputs + Array.length ffs in
  if Netlist.num_inputs comb <> expected then
    invalid_arg
      (Printf.sprintf "Seq_netlist.create: core has %d inputs, expected %d"
         (Netlist.num_inputs comb) expected);
  Array.iter
    (fun ff ->
      if ff.data < 0 || ff.data >= Netlist.size comb then
        invalid_arg "Seq_netlist.create: flip-flop data id out of range")
    ffs;
  { core = comb; n_real = n_real_inputs; flops = Array.copy ffs }

let of_blif { Dpa_logic.Blif.comb; n_real_inputs; latches } =
  let ffs =
    Array.map
      (fun { Dpa_logic.Blif.data; init } -> { data; init })
      latches
  in
  create ~comb ~n_real_inputs ~ffs

let comb t = t.core

let n_real_inputs t = t.n_real

let n_ffs t = Array.length t.flops

let ffs t = Array.copy t.flops

let ff_q_input t k =
  if k < 0 || k >= Array.length t.flops then invalid_arg "Seq_netlist.ff_q_input";
  (Netlist.inputs t.core).(t.n_real + k)

let unroll ~cycles t =
  if cycles < 1 then invalid_arg "Seq_netlist.unroll: need at least one cycle";
  let b = Dpa_logic.Builder.create ~name:(Netlist.name t.core ^ "_unrolled") () in
  let core_inputs = Netlist.inputs t.core in
  let input_name pos frame =
    let base =
      Option.value
        ~default:(Printf.sprintf "pi%d" pos)
        (Netlist.node_name t.core core_inputs.(pos))
    in
    Printf.sprintf "%s@%d" base frame
  in
  (* splice one frame of the core given builder ids for its inputs *)
  let splice_frame frame_inputs =
    let mapping = Array.make (Netlist.size t.core) (-1) in
    Array.iteri (fun pos id -> mapping.(id) <- frame_inputs.(pos)) core_inputs;
    Netlist.iter_nodes
      (fun i g ->
        match g with
        | Dpa_logic.Gate.Input -> ()
        | Dpa_logic.Gate.Const c -> mapping.(i) <- Dpa_logic.Builder.const b c
        | Dpa_logic.Gate.Buf x -> mapping.(i) <- mapping.(x)
        | Dpa_logic.Gate.Not x -> mapping.(i) <- Dpa_logic.Builder.not_ b mapping.(x)
        | Dpa_logic.Gate.And xs ->
          mapping.(i) <-
            Dpa_logic.Builder.and_ b (List.map (fun x -> mapping.(x)) (Array.to_list xs))
        | Dpa_logic.Gate.Or xs ->
          mapping.(i) <-
            Dpa_logic.Builder.or_ b (List.map (fun x -> mapping.(x)) (Array.to_list xs))
        | Dpa_logic.Gate.Xor (x, y) ->
          mapping.(i) <- Dpa_logic.Builder.xor_ b mapping.(x) mapping.(y))
      t.core;
    mapping
  in
  let state = ref (Array.map (fun ff -> Dpa_logic.Builder.const b ff.init) t.flops) in
  for frame = 0 to cycles - 1 do
    (* explicit loop: Array.init's evaluation order is unspecified, and
       input declaration order must be cycle-major and deterministic *)
    let frame_inputs = Array.make (Array.length core_inputs) (-1) in
    for pos = 0 to Array.length core_inputs - 1 do
      frame_inputs.(pos) <-
        (if pos < t.n_real then Dpa_logic.Builder.input ~name:(input_name pos frame) b
         else !state.(pos - t.n_real))
    done;
    let mapping = splice_frame frame_inputs in
    Array.iter
      (fun (po, d) ->
        Dpa_logic.Builder.output b (Printf.sprintf "%s@%d" po frame) mapping.(d))
      (Netlist.outputs t.core);
    state := Array.map (fun ff -> mapping.(ff.data)) t.flops
  done;
  Dpa_logic.Builder.finish b

let simulate t cycles =
  let state = Array.map (fun ff -> ff.init) t.flops in
  Array.map
    (fun pi_vec ->
      if Array.length pi_vec <> t.n_real then
        invalid_arg "Seq_netlist.simulate: wrong primary-input vector width";
      let core_vec = Array.append pi_vec state in
      let values = Dpa_logic.Eval.all_nodes t.core core_vec in
      Array.iteri (fun k ff -> state.(k) <- values.(ff.data)) t.flops;
      Array.map (fun (_, d) -> values.(d)) (Netlist.outputs t.core))
    cycles
