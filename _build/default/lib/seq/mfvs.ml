type result = {
  fvs : int list;
  supervertices : int list list;
  greedy_picks : int;
}

(* Alive vertices in descending weight (ties by id) — the paper's
   processing order for supervertices: heavy vertices are considered for
   the degree reductions first, so they get bypassed ("ignored") and stay
   out of the FVS, leaving lighter vertices to absorb the cycles. *)
let processing_order g =
  let vs = Sgraph.alive_vertices g in
  List.sort
    (fun a b ->
      match compare (Sgraph.weight g b) (Sgraph.weight g a) with
      | 0 -> compare a b
      | c -> c)
    vs

let reduce g =
  let forced = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if Sgraph.is_alive g v then
          if Sgraph.has_edge g v v then begin
            forced := Sgraph.members g v @ !forced;
            Sgraph.delete g v;
            changed := true
          end
          else begin
            let np = List.length (Sgraph.pred g v) in
            let ns = List.length (Sgraph.succ g v) in
            if np = 0 || ns = 0 then begin
              Sgraph.delete g v;
              changed := true
            end
            else if np = 1 || ns = 1 then begin
              Sgraph.bypass g v;
              changed := true
            end
          end)
      (processing_order g)
  done;
  List.sort_uniq compare !forced

let symmetrize g =
  (* Signature = (pred set, succ set); vertices sharing one merge. *)
  let table = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let key = (Sgraph.pred g v, Sgraph.succ g v) in
      Hashtbl.replace table key (v :: Option.value ~default:[] (Hashtbl.find_opt table key)))
    (Sgraph.alive_vertices g);
  let groups = ref [] in
  Hashtbl.iter
    (fun _ vs ->
      match List.rev vs with
      | [] | [ _ ] -> ()
      | leader :: rest ->
        List.iter (fun v -> Sgraph.merge g ~into:leader v) rest;
        groups := Sgraph.members g leader :: !groups)
    table;
  List.sort compare !groups

let greedy_pick g =
  (* When reductions stall: break the most cycles per flip-flop paid —
     largest in×out degree product, ties by lower weight, then lower id. *)
  let best = ref None in
  List.iter
    (fun v ->
      let w = Sgraph.weight g v in
      let d = List.length (Sgraph.pred g v) * List.length (Sgraph.succ g v) in
      match !best with
      | None -> best := Some (v, w, d)
      | Some (_, bw, bd) -> if d > bd || (d = bd && w < bw) then best := Some (v, w, d))
    (Sgraph.alive_vertices g);
  !best

let solve ?(symmetry = true) g0 =
  let g = Sgraph.copy g0 in
  let fvs = ref [] in
  let supervertices = ref [] in
  let picks = ref 0 in
  let rec shrink () =
    fvs := reduce g @ !fvs;
    if symmetry then begin
      match symmetrize g with
      | [] -> ()
      | groups ->
        supervertices := !supervertices @ groups;
        shrink ()
    end
  in
  let rec loop () =
    shrink ();
    match greedy_pick g with
    | None -> ()
    | Some (v, _, _) ->
      incr picks;
      fvs := Sgraph.members g v @ !fvs;
      Sgraph.delete g v;
      loop ()
  in
  loop ();
  { fvs = List.sort_uniq compare !fvs; supervertices = !supervertices; greedy_picks = !picks }

let is_feedback_vertex_set g vertices =
  let g = Sgraph.copy g in
  List.iter (fun v -> if Sgraph.is_alive g v then Sgraph.delete g v) vertices;
  Sgraph.is_acyclic g
