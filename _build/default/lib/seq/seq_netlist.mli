(** Sequential circuits: a combinational core plus edge-triggered D
    flip-flops.

    The core's primary inputs are the real primary inputs followed by one
    pseudo-input per flip-flop (the flip-flop's Q output). Each flip-flop's
    D pin is driven by a core node. This "unrolled" view is exactly what
    the paper's partitioning step manipulates: cutting a flip-flop turns
    its Q pseudo-input into a free primary input. *)

type ff = {
  data : int;  (** core node driving D *)
  init : bool;  (** reset value of Q *)
}

type t

val create : comb:Dpa_logic.Netlist.t -> n_real_inputs:int -> ffs:ff array -> t
(** The core must have exactly [n_real_inputs + Array.length ffs] primary
    inputs: the real ones first, then one Q pseudo-input per flip-flop (in
    flip-flop order). Raises [Invalid_argument] otherwise, or if an [ff]
    data id is out of range. *)

val of_blif : Dpa_logic.Blif.sequential -> t
(** Adopts a parsed sequential BLIF model (latch order preserved). *)

val comb : t -> Dpa_logic.Netlist.t

val n_real_inputs : t -> int

val n_ffs : t -> int

val ffs : t -> ff array

val ff_q_input : t -> int -> int
(** Core node id of flip-flop [k]'s Q pseudo-input. *)

val unroll : cycles:int -> t -> Dpa_logic.Netlist.t
(** Time-frame expansion: a combinational netlist computing [cycles]
    consecutive cycles from the reset state. Inputs are the real primary
    inputs of each frame in cycle-major order (named ["name@t"]); outputs
    are each frame's primary outputs (named ["po@t"]). Frame 0 sees the
    flip-flops' [init] values as constants. The classical bridge from
    sequential to combinational reasoning — {!simulate} and evaluating the
    unrolled netlist agree cycle for cycle. *)

val simulate : t -> bool array array -> bool array array
(** Cycle-accurate simulation: one real-primary-input vector per cycle in,
    one primary-output vector per cycle out. Flip-flops start at their
    [init] values and update on every cycle boundary. *)
