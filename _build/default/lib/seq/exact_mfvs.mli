(** Exact minimum feedback vertex set by branch and bound.

    MFVS is NP-complete, so the flow uses the heuristics of {!Mfvs}; this
    solver exists to measure their quality on small s-graphs (it powers
    the test-suite optimality checks and the MFVS ablation). The search
    branches on the lowest-id vertex of some cycle — either it joins the
    FVS or the whole cycle must be broken elsewhere — after applying the
    FVS-preserving reductions, and prunes with the incumbent weight. *)

type result = {
  fvs : int list;  (** original member vertices, ascending *)
  weight : int;  (** total flip-flops cut *)
  nodes_explored : int;
}

val solve : ?node_limit:int -> Sgraph.t -> result option
(** Optimal FVS by total member weight. Returns [None] when the search
    exceeds [node_limit] branch nodes (default 200_000) — the caller
    should fall back to the heuristic. The input graph is not modified. *)

val weight_of : Sgraph.t -> int list -> int
(** Total member count of the given alive vertices. *)
