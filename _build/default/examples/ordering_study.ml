(* BDD variable-ordering study (paper §4.2.2):

     dune exec examples/ordering_study.exe -- [n_circuits]

   The power estimator rebuilds BDDs for the whole domino block at every
   candidate phase assignment, so the variable order directly bounds the
   optimizer's runtime and memory. This study measures shared-BDD node
   counts for the paper's reverse-topological heuristic against the naive
   orders, across a sweep of generated control blocks, and reports how
   often each order wins. *)

module Ordering = Dpa_bdd.Ordering
module Build = Dpa_bdd.Build

let () =
  let n_circuits =
    match Array.to_list Sys.argv with
    | _ :: n :: _ -> (try int_of_string n with Failure _ -> 12)
    | _ :: [] | [] -> 12
  in
  let strategies =
    [ ("reverse-topological", fun net -> Ordering.reverse_topological net);
      ("topological", fun net -> Ordering.topological net);
      ("disturbed", fun net -> Ordering.disturbed net);
      ("declaration", fun net -> Ordering.declaration net);
      ("random", fun net -> Ordering.shuffled (Dpa_util.Rng.create 99) net) ]
  in
  let totals = Array.make (List.length strategies) 0 in
  let wins = Array.make (List.length strategies) 0 in
  let t =
    Dpa_util.Table.create
      ~columns:
        (("circuit", Dpa_util.Table.Left)
        :: List.map (fun (name, _) -> (name, Dpa_util.Table.Right)) strategies)
  in
  for k = 1 to n_circuits do
    let net =
      Dpa_synth.Opt.optimize
        (Dpa_workload.Generator.combinational
           { Dpa_workload.Generator.default with
             Dpa_workload.Generator.seed = 1000 + k;
             n_inputs = 32;
             n_outputs = 8;
             gates_per_output = 12;
             support = 10;
             and_bias = 0.4;
             inverter_prob = 0.15;
             reuse_fraction = 0.35 })
    in
    let sizes =
      List.map
        (fun (_, order_of) ->
          Build.shared_all_size net (Build.of_netlist ~order:(order_of net) net))
        strategies
    in
    let best = List.fold_left min max_int sizes in
    List.iteri
      (fun i s ->
        totals.(i) <- totals.(i) + s;
        if s = best then wins.(i) <- wins.(i) + 1)
      sizes;
    Dpa_util.Table.add_row t
      (Printf.sprintf "ctrl-%02d" k :: List.map string_of_int sizes)
  done;
  Dpa_util.Table.add_separator t;
  Dpa_util.Table.add_row t ("TOTAL" :: Array.to_list (Array.map string_of_int totals));
  Dpa_util.Table.add_row t ("wins" :: Array.to_list (Array.map string_of_int wins));
  Dpa_util.Table.print t;
  let rt = float_of_int totals.(0) in
  List.iteri
    (fun i (name, _) ->
      if i > 0 then
        Printf.printf "reverse-topological uses %.1f%% of the nodes of %s\n"
          (rt /. float_of_int totals.(i) *. 100.0)
          name)
    strategies
