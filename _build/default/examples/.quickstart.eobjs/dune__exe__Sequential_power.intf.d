examples/sequential_power.mli:
