examples/sequential_power.ml: Array Dpa_core Dpa_logic Dpa_seq Dpa_synth Dpa_util Dpa_workload List Printf String
