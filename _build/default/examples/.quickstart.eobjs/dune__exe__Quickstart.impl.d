examples/quickstart.ml: Array Dpa_domino Dpa_logic Dpa_phase Dpa_power Dpa_sim Dpa_synth Dpa_util Printf String
