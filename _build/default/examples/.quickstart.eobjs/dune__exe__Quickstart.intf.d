examples/quickstart.mli:
