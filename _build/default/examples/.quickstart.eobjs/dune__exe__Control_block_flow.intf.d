examples/control_block_flow.mli:
