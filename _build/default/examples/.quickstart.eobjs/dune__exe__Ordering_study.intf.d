examples/ordering_study.mli:
