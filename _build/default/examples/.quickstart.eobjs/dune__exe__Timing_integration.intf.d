examples/timing_integration.mli:
