examples/timing_integration.ml: Array Dpa_domino Dpa_logic Dpa_phase Dpa_power Dpa_synth Dpa_timing Dpa_util Dpa_workload Float List Printf
