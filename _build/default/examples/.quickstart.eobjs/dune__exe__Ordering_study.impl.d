examples/ordering_study.ml: Array Dpa_bdd Dpa_synth Dpa_util Dpa_workload List Printf Sys
