examples/control_block_flow.ml: Array Dpa_core Dpa_logic Dpa_workload List Printf String Sys
