(* Power estimation for a sequential domino design:

     dune exec examples/sequential_power.exe

   Sequential circuits cannot be fed to the BDD estimator directly — their
   flip-flop loops would need full reachability analysis. The paper's
   answer (§4.2.1) is to cut a small feedback vertex set, treat the cut
   flip-flops as pseudo-inputs, and propagate exact probabilities through
   the remaining acyclic flip-flops. This example runs that pipeline on a
   generated sequential control block and validates every step against
   cycle-accurate simulation. *)

module Seq_netlist = Dpa_seq.Seq_netlist
module Netlist = Dpa_logic.Netlist

let () =
  let params =
    { Dpa_workload.Generator.default with
      Dpa_workload.Generator.seed = 8;
      n_inputs = 12;
      n_outputs = 4;
      gates_per_output = 9;
      and_bias = 0.4;
      inverter_prob = 0.1;
      reuse_fraction = 0.4 }
  in
  let sn = Dpa_workload.Generator.sequential params ~n_ffs:8 in
  let n_real = Seq_netlist.n_real_inputs sn in
  let n_ffs = Seq_netlist.n_ffs sn in
  Printf.printf "sequential block: %d primary inputs, %d flip-flops, %d gates\n" n_real n_ffs
    (Netlist.gate_count (Seq_netlist.comb sn));

  (* 1. s-graph and enhanced MFVS *)
  let g = Dpa_seq.Sgraph.of_seq_netlist sn in
  let mfvs = Dpa_seq.Mfvs.solve g in
  Printf.printf "s-graph: %d vertices, FVS = {%s} (%d supervertices, %d greedy picks)\n"
    (Dpa_seq.Sgraph.num_vertices g)
    (String.concat "," (List.map string_of_int mfvs.Dpa_seq.Mfvs.fvs))
    (List.length mfvs.Dpa_seq.Mfvs.supervertices)
    mfvs.Dpa_seq.Mfvs.greedy_picks;

  (* 2. partition-based probabilities vs long-run simulation *)
  let input_probs = Array.make n_real 0.5 in
  let part = Dpa_seq.Partition.probabilities ~refine:8 ~input_probs sn in
  let cycles = 40_000 in
  let rng = Dpa_util.Rng.create 4 in
  let state = Array.map (fun ff -> ff.Seq_netlist.init) (Seq_netlist.ffs sn) in
  let q_hits = Array.make n_ffs 0 in
  let core = Seq_netlist.comb sn in
  for _ = 1 to cycles do
    let vec = Array.map (fun p -> Dpa_util.Rng.bernoulli rng p) input_probs in
    let values = Dpa_logic.Eval.all_nodes core (Array.append vec state) in
    Array.iteri (fun k ff -> state.(k) <- values.(ff.Seq_netlist.data)) (Seq_netlist.ffs sn);
    Array.iteri (fun k q -> if q then q_hits.(k) <- q_hits.(k) + 1) state
  done;
  print_endline "\nflip-flop steady-state probabilities (estimate vs simulation):";
  Array.iteri
    (fun k est ->
      Printf.printf "  ff%d: %.3f vs %.3f%s\n" k est
        (float_of_int q_hits.(k) /. float_of_int cycles)
        (if List.mem k part.Dpa_seq.Partition.fvs then "   <- cut (assumed)" else ""))
    part.Dpa_seq.Partition.ff_probs;

  (* 3. run the full sequential flow: the D pin of every flip-flop gets a
     phase of its own alongside the primary outputs *)
  let r = Dpa_core.Seq_flow.compare_ma_mp sn in
  let comb = r.Dpa_core.Seq_flow.comb in
  Printf.printf
    "\ndomino synthesis of the next-state/output logic (%d block outputs):\n\
    \  min-area  phases %s: %3d cells, power %.3f\n\
    \  min-power phases %s: %3d cells, power %.3f  (%.1f%% saving, %s)\n"
    comb.Dpa_core.Flow.n_po
    (Dpa_synth.Phase.to_string comb.Dpa_core.Flow.ma.Dpa_core.Flow.assignment)
    comb.Dpa_core.Flow.ma.Dpa_core.Flow.size comb.Dpa_core.Flow.ma.Dpa_core.Flow.power
    (Dpa_synth.Phase.to_string comb.Dpa_core.Flow.mp.Dpa_core.Flow.assignment)
    comb.Dpa_core.Flow.mp.Dpa_core.Flow.size comb.Dpa_core.Flow.mp.Dpa_core.Flow.power
    comb.Dpa_core.Flow.power_saving_pct
    comb.Dpa_core.Flow.mp.Dpa_core.Flow.strategy
