(* Timing-integrated phase assignment — the paper's closing hypothesis:

     dune exec examples/timing_integration.exe

   "One promising direction for future work is in the area of integrating
   the choice of phase assignment with timing optimization. We believe
   that such a combination will lead to even greater power savings."
   (paper §6)

   This example sweeps the clock constraint from relaxed to aggressive
   and compares, at each point:
   - the sequential flow (pick phases for unsized power, then resize to
     the clock — the Table 2 methodology), and
   - the integrated flow (price every candidate assignment AFTER timing
     closure, so resizing cost participates in the phase decision). *)

module Mapped = Dpa_domino.Mapped
module Inverterless = Dpa_synth.Inverterless
module Netlist = Dpa_logic.Netlist

let () =
  let params =
    { Dpa_workload.Generator.default with
      Dpa_workload.Generator.seed = 77;
      n_inputs = 24;
      n_outputs = 6;
      gates_per_output = 10;
      and_bias = 0.35;
      inverter_prob = 0.1;
      reuse_fraction = 0.4 }
  in
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Generator.combinational params) in
  let probs = Array.make (Netlist.num_inputs net) 0.5 in
  let ma = Dpa_synth.Min_area.best net in
  let ma_mapped = Mapped.map (Inverterless.realize net ma) in
  let unsized = (Dpa_timing.Sta.analyze ma_mapped).Dpa_timing.Sta.critical_delay in
  Printf.printf
    "circuit: %d PIs, %d POs, %d gates; min-area critical delay %.2f (unsized)\n\n"
    (Netlist.num_inputs net) (Netlist.num_outputs net) (Netlist.gate_count net) unsized;
  let t =
    Dpa_util.Table.create
      ~columns:
        [ ("clock", Dpa_util.Table.Right); ("% of MA", Dpa_util.Table.Right);
          ("seq phases", Dpa_util.Table.Left); ("seq power", Dpa_util.Table.Right);
          ("integrated phases", Dpa_util.Table.Left);
          ("integrated power", Dpa_util.Table.Right);
          ("gain %", Dpa_util.Table.Right) ]
  in
  List.iter
    (fun factor ->
      let clock = factor *. unsized in
      (* sequential: power-optimal phases, then resize *)
      let seq =
        Dpa_phase.Optimizer.minimize_power
          (Dpa_phase.Optimizer.default_config ~input_probs:probs) net
      in
      let seq_mapped =
        Mapped.map (Inverterless.realize net seq.Dpa_phase.Optimizer.assignment)
      in
      let seq_met =
        (Dpa_timing.Resize.meet ~clock seq_mapped).Dpa_timing.Resize.met
      in
      let seq_power =
        if seq_met then
          (Dpa_power.Estimate.of_mapped ~input_probs:probs seq_mapped)
            .Dpa_power.Estimate.total
        else infinity
      in
      (* integrated: price after closure *)
      let ta =
        Dpa_phase.Timing_aware.minimize
          (Dpa_phase.Timing_aware.default_config ~input_probs:probs ~clock) net
      in
      Dpa_util.Table.add_row t
        [ Printf.sprintf "%.2f" clock;
          Printf.sprintf "%.0f%%" (factor *. 100.0);
          Dpa_synth.Phase.to_string seq.Dpa_phase.Optimizer.assignment;
          (if Float.is_finite seq_power then Printf.sprintf "%.3f" seq_power else "VIOL");
          Dpa_synth.Phase.to_string ta.Dpa_phase.Timing_aware.assignment;
          (if ta.Dpa_phase.Timing_aware.met then
             Printf.sprintf "%.3f" ta.Dpa_phase.Timing_aware.power
           else "VIOL");
          (if Float.is_finite seq_power && ta.Dpa_phase.Timing_aware.met then
             Printf.sprintf "%.1f"
               (Dpa_util.Stats.percent_change ~from:seq_power
                  ~to_:ta.Dpa_phase.Timing_aware.power)
           else "-") ])
    [ 1.0; 0.8; 0.6; 0.5; 0.4; 0.35 ];
  Dpa_util.Table.print t;
  print_endline
    "\nAt relaxed clocks the two flows agree (resizing is free); as the clock\n\
     tightens, the integrated search can trade to an assignment whose critical\n\
     cells carry less switching and are cheaper to upsize."
