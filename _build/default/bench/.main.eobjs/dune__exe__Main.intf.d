bench/main.mli:
