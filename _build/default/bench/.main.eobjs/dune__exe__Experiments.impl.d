bench/experiments.ml: Array Dpa_bdd Dpa_core Dpa_domino Dpa_logic Dpa_phase Dpa_power Dpa_seq Dpa_sim Dpa_synth Dpa_timing Dpa_util Dpa_workload Float List Printf Seq String
