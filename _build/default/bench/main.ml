(* Benchmark driver: regenerates every table and figure of the paper and
   runs Bechamel micro-benchmarks of the kernels behind each experiment.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig5    # one experiment
     dune exec bench/main.exe -- perf    # just the Bechamel suite *)

open Bechamel
module Netlist = Dpa_logic.Netlist
module Phase = Dpa_synth.Phase

(* ------------------------------------------------------------------ *)
(* Bechamel suite: one Test.make per table/figure, wrapping the kernel  *)
(* that regenerates it (scaled where the full experiment runs seconds). *)
(* ------------------------------------------------------------------ *)

let small_profile =
  { Dpa_workload.Generator.default with
    Dpa_workload.Generator.seed = 7;
    n_inputs = 24;
    n_outputs = 6;
    gates_per_output = 10;
    and_bias = 0.35;
    inverter_prob = 0.1;
    reuse_fraction = 0.4 }

let prepared_net = lazy (Dpa_synth.Opt.optimize (Dpa_workload.Generator.combinational small_profile))

let prepared_mapped =
  lazy
    (let net = Lazy.force prepared_net in
     Dpa_domino.Mapped.map
       (Dpa_synth.Inverterless.realize net (Phase.all_positive (Netlist.num_outputs net))))

let bench_fig2 = Test.make ~name:"fig2.switching-model" (Staged.stage (fun () ->
    Dpa_power.Model.fig2_points ~steps:101 ()))

let bench_fig3_4 = Test.make ~name:"fig3-4.inverterless-realize" (Staged.stage (fun () ->
    let net = Lazy.force prepared_net in
    Dpa_synth.Inverterless.realize net (Phase.all_positive (Netlist.num_outputs net))))

let bench_fig5 = Test.make ~name:"fig5.power-estimate" (Staged.stage (fun () ->
    let mapped = Lazy.force prepared_mapped in
    Dpa_power.Estimate.of_mapped
      ~input_probs:(Array.make (Array.length (Netlist.inputs (Lazy.force prepared_net))) 0.5)
      mapped))

let bench_fig6 = Test.make ~name:"fig6.greedy-search" (Staged.stage (fun () ->
    let net = Lazy.force prepared_net in
    let probs = Array.make (Netlist.num_inputs net) 0.5 in
    let measure = Dpa_phase.Measure.create ~input_probs:probs net in
    let cost = Dpa_phase.Cost.make net in
    let base = Dpa_bdd.Build.probabilities ~input_probs:probs net in
    Dpa_phase.Greedy.run measure ~cost ~base_probs:base))

let bench_fig7 = Test.make ~name:"fig7.partition-probabilities" (Staged.stage (fun () ->
    let sn =
      Dpa_workload.Generator.sequential
        { small_profile with Dpa_workload.Generator.seed = 11 } ~n_ffs:8
    in
    Dpa_seq.Partition.probabilities ~input_probs:(Array.make 24 0.5) sn))

let bench_fig8_9 = Test.make ~name:"fig8-9.mfvs-solve" (Staged.stage (fun () ->
    let sn =
      Dpa_workload.Generator.sequential
        { small_profile with Dpa_workload.Generator.seed = 13 } ~n_ffs:12
    in
    Dpa_seq.Mfvs.solve (Dpa_seq.Sgraph.of_seq_netlist sn)))

let bench_fig10 = Test.make ~name:"fig10.bdd-build-ordered" (Staged.stage (fun () ->
    let net = Lazy.force prepared_net in
    Dpa_bdd.Build.of_netlist ~order:(Dpa_bdd.Ordering.reverse_topological net) net))

let bench_table1 = Test.make ~name:"table1.ma-vs-mp-flow" (Staged.stage (fun () ->
    Dpa_core.Flow.compare_ma_mp (Dpa_workload.Generator.combinational small_profile)))

let bench_table2 = Test.make ~name:"table2.timed-flow" (Staged.stage (fun () ->
    let config =
      { Dpa_core.Flow.default_config with
        Dpa_core.Flow.timing = Some Dpa_core.Flow.default_timing }
    in
    Dpa_core.Flow.compare_ma_mp ~config
      (Dpa_workload.Generator.combinational small_profile)))

let bench_simulator = Test.make ~name:"powermill-substitute.1k-cycles" (Staged.stage (fun () ->
    let mapped = Lazy.force prepared_mapped in
    let rng = Dpa_util.Rng.create 3 in
    Dpa_sim.Simulator.measure ~cycles:1000 rng
      ~input_probs:(Array.make (Netlist.num_inputs (Lazy.force prepared_net)) 0.5)
      mapped))

let bench_sta = Test.make ~name:"timing.sta" (Staged.stage (fun () ->
    Dpa_timing.Sta.analyze (Lazy.force prepared_mapped)))

let prepared_seq =
  lazy
    (Dpa_workload.Generator.sequential
       { small_profile with Dpa_workload.Generator.seed = 21 } ~n_ffs:6)

let bench_seqtable = Test.make ~name:"seqtable.seq-flow" (Staged.stage (fun () ->
    Dpa_core.Seq_flow.compare_ma_mp (Lazy.force prepared_seq)))

let bench_validate = Test.make ~name:"validate.sim-2k-cycles" (Staged.stage (fun () ->
    let mapped = Lazy.force prepared_mapped in
    let rng = Dpa_util.Rng.create 5 in
    Dpa_sim.Simulator.measure ~cycles:2000 rng
      ~input_probs:(Array.make (Netlist.num_inputs (Lazy.force prepared_net)) 0.5)
      mapped))

let bench_equiv = Test.make ~name:"equiv.bdd-check" (Staged.stage (fun () ->
    let net = Lazy.force prepared_net in
    Dpa_bdd.Equiv.check net (Dpa_synth.Opt.optimize net)))

let bench_isop = Test.make ~name:"resynth.isop-two-level" (Staged.stage (fun () ->
    Dpa_synth.Resynth.two_level (Lazy.force prepared_net)))

let bench_steady = Test.make ~name:"steady-state.markov" (Staged.stage (fun () ->
    let sn =
      Dpa_workload.Generator.sequential
        { Dpa_workload.Generator.default with
          Dpa_workload.Generator.seed = 4;
          n_inputs = 5;
          n_outputs = 2;
          gates_per_output = 5;
          support = 4 }
        ~n_ffs:4
    in
    Dpa_seq.Steady_state.analyze ~input_probs:(Array.make 5 0.5) sn))

let perf () =
  Printf.printf "\n=== Bechamel micro-benchmarks (one per experiment) ===\n\n";
  let tests =
    Test.make_grouped ~name:"dpa"
      [ bench_fig2; bench_fig3_4; bench_fig5; bench_fig6; bench_fig7; bench_fig8_9;
        bench_fig10; bench_table1; bench_table2; bench_seqtable; bench_validate;
        bench_equiv; bench_isop; bench_steady; bench_simulator; bench_sta ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let t =
    Dpa_util.Table.create
      ~columns:
        [ ("benchmark", Dpa_util.Table.Left);
          ("time/run", Dpa_util.Table.Right);
          ("r²", Dpa_util.Table.Right) ]
  in
  let pretty_time ns =
    if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, r) ->
      let estimate =
        match Analyze.OLS.estimates r with
        | Some [ e ] -> pretty_time e
        | Some _ | None -> "n/a"
      in
      let rsq =
        match Analyze.OLS.r_square r with
        | Some v -> Printf.sprintf "%.3f" v
        | None -> "-"
      in
      Dpa_util.Table.add_row t [ name; estimate; rsq ])
    (List.sort (fun (a, _) (b, _) -> compare a b) rows);
  Dpa_util.Table.print t

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments =
  [ ("fig2", Experiments.fig2);
    ("fig3", Experiments.fig3_4);
    ("fig4", Experiments.fig3_4);
    ("fig5", Experiments.fig5);
    ("fig6", Experiments.fig6);
    ("fig7", Experiments.fig7);
    ("fig8", Experiments.fig8);
    ("fig9", Experiments.fig9);
    ("fig10", Experiments.fig10);
    ("table1", Experiments.table1);
    ("table1-probs", Experiments.table1_probs);
    ("table2", Experiments.table2);
    ("casestudy", Experiments.casestudy);
    ("seqtable", Experiments.seq_table);
    ("validate", Experiments.validate);
    ("ablation", Experiments.ablation);
    ("perf", perf) ]

let all () =
  (* fig3 and fig4 share a regeneration; run each distinct experiment once *)
  Experiments.fig2 ();
  Experiments.fig3_4 ();
  Experiments.fig5 ();
  Experiments.fig6 ();
  Experiments.fig7 ();
  Experiments.fig8 ();
  Experiments.fig9 ();
  Experiments.fig10 ();
  Experiments.table1 ();
  Experiments.table1_probs ();
  Experiments.table2 ();
  Experiments.casestudy ();
  Experiments.seq_table ();
  Experiments.validate ();
  Experiments.ablation ();
  perf ()

let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> all ()
  | _ :: names ->
    List.iter
      (fun name ->
        match List.assoc_opt (String.lowercase_ascii name) experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
      names
  | [] -> all ()
