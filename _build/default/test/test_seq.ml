module Seq_netlist = Dpa_seq.Seq_netlist
module Sgraph = Dpa_seq.Sgraph
module Mfvs = Dpa_seq.Mfvs
module Partition = Dpa_seq.Partition
module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate

let test_seq_netlist_validation () =
  let t = Netlist.create () in
  let _x = Netlist.add_input t in
  Alcotest.check_raises "wrong input count"
    (Invalid_argument "Seq_netlist.create: core has 1 inputs, expected 2") (fun () ->
      ignore
        (Seq_netlist.create ~comb:t ~n_real_inputs:1
           ~ffs:[| { Seq_netlist.data = 0; init = false } |]))

let test_ring_counter_simulation () =
  let ring = Dpa_workload.Examples.ring_counter ~n:4 in
  (* enable high for 8 cycles: the hot bit rotates with period 4 *)
  let vectors = Array.make 8 [| true |] in
  let outs = Seq_netlist.simulate ring vectors in
  let head = Array.map (fun o -> o.(0)) outs in
  (* q0 starts true; the observed head output is the state *during* the
     cycle, so it reads true at cycles 0, 4 and again at 8... *)
  Alcotest.(check bool) "cycle0 head" true head.(0);
  Alcotest.(check bool) "cycle1 head" false head.(1);
  Alcotest.(check bool) "cycle4 head" true head.(4);
  (* exactly 2 of 8 observations are hot at q0 *)
  let hot = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 head in
  Alcotest.(check int) "period 4" 2 hot

let test_ring_counter_disabled () =
  let ring = Dpa_workload.Examples.ring_counter ~n:3 in
  (* enable low: the hot bit drains out and never returns *)
  let outs = Seq_netlist.simulate ring (Array.make 6 [| false |]) in
  let last = outs.(5).(0) in
  Alcotest.(check bool) "drained" false last

let test_sgraph_basics () =
  let g = Sgraph.create 3 in
  Sgraph.add_edge g 0 1;
  Sgraph.add_edge g 1 2;
  Sgraph.add_edge g 2 0;
  Alcotest.(check (list int)) "succ" [ 1 ] (Sgraph.succ g 0);
  Alcotest.(check (list int)) "pred" [ 2 ] (Sgraph.pred g 0);
  Alcotest.(check bool) "edge" true (Sgraph.has_edge g 0 1);
  Alcotest.(check bool) "cyclic" false (Sgraph.is_acyclic g);
  Sgraph.delete g 1;
  Alcotest.(check bool) "acyclic after cut" true (Sgraph.is_acyclic g);
  Alcotest.(check (list int)) "alive" [ 0; 2 ] (Sgraph.alive_vertices g)

let test_sgraph_bypass_self_loop () =
  (* 0 → 1 → 0 with bypass of 1 creates a self-loop on 0 *)
  let g = Sgraph.create 2 in
  Sgraph.add_edge g 0 1;
  Sgraph.add_edge g 1 0;
  Sgraph.bypass g 1;
  Alcotest.(check bool) "self loop" true (Sgraph.has_edge g 0 0)

let test_sgraph_merge () =
  let g = Sgraph.create 3 in
  Sgraph.add_edge g 0 2;
  Sgraph.add_edge g 1 2;
  Sgraph.add_edge g 2 0;
  Sgraph.add_edge g 2 1;
  Sgraph.merge g ~into:0 1;
  Alcotest.(check int) "weight" 2 (Sgraph.weight g 0);
  Alcotest.(check (list int)) "members" [ 0; 1 ] (List.sort compare (Sgraph.members g 0));
  Alcotest.(check bool) "edges folded" true (Sgraph.has_edge g 0 2 && Sgraph.has_edge g 2 0)

let test_sgraph_of_ring () =
  let ring = Dpa_workload.Examples.ring_counter ~n:5 in
  let g = Sgraph.of_seq_netlist ring in
  Alcotest.(check int) "vertices" 5 (Sgraph.num_vertices g);
  (* single directed cycle 4→0→1→2→3→4 *)
  Alcotest.(check bool) "ring edge" true (Sgraph.has_edge g 4 0);
  Alcotest.(check bool) "chain edge" true (Sgraph.has_edge g 0 1);
  Alcotest.(check bool) "no reverse edge" false (Sgraph.has_edge g 1 0);
  let r = Mfvs.solve g in
  Alcotest.(check int) "mfvs of a ring is 1" 1 (List.length r.Mfvs.fvs)

let test_mfvs_self_loop_forced () =
  let g = Sgraph.create 2 in
  Sgraph.add_edge g 0 0;
  Sgraph.add_edge g 0 1;
  let forced = Mfvs.reduce g in
  Alcotest.(check (list int)) "self loop in fvs" [ 0 ] forced;
  Alcotest.(check bool) "graph empty" true (Sgraph.alive_vertices g = [])

let test_mfvs_fig9 () =
  let g = Dpa_workload.Examples.fig9_sgraph () in
  (* no plain reduction applies to the strongly connected graph *)
  let g' = Sgraph.copy g in
  let forced = Mfvs.reduce g' in
  Alcotest.(check (list int)) "unreducible" [] forced;
  Alcotest.(check int) "all alive" 5 (List.length (Sgraph.alive_vertices g'));
  (* symmetrization forms ABE (weight 3) and CD (weight 2) *)
  let groups = Mfvs.symmetrize g' in
  Alcotest.(check (list (list int))) "supervertices" [ [ 0; 1; 4 ]; [ 2; 3 ] ]
    (List.map (List.sort compare) groups);
  (* the full solve bypasses ABE and forces CD — FVS = {C, D} *)
  let r = Mfvs.solve g in
  Alcotest.(check (list int)) "fvs is CD" [ 2; 3 ] r.Mfvs.fvs;
  Alcotest.(check int) "no greedy picks" 0 r.Mfvs.greedy_picks;
  Alcotest.(check bool) "valid fvs" true (Mfvs.is_feedback_vertex_set g r.Mfvs.fvs)

let test_mfvs_without_symmetry_is_worse_on_fig9 () =
  let g = Dpa_workload.Examples.fig9_sgraph () in
  let with_sym = Mfvs.solve ~symmetry:true g in
  let without = Mfvs.solve ~symmetry:false g in
  Alcotest.(check bool) "both valid" true
    (Mfvs.is_feedback_vertex_set g with_sym.Mfvs.fvs
    && Mfvs.is_feedback_vertex_set g without.Mfvs.fvs);
  Alcotest.(check bool) "symmetry no worse" true
    (List.length with_sym.Mfvs.fvs <= List.length without.Mfvs.fvs)

(* random s-graph for property tests *)
let gen_sgraph =
  let open QCheck2.Gen in
  let* n = int_range 2 12 in
  let* edges = list_repeat (3 * n) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
  return (n, edges)

let build_sgraph (n, edges) =
  let g = Sgraph.create n in
  List.iter (fun (u, v) -> Sgraph.add_edge g u v) edges;
  g

let prop_mfvs_valid =
  Testkit.qcheck_case ~count:200 ~name:"mfvs result is a feedback vertex set"
    gen_sgraph
    (fun spec ->
      let g = build_sgraph spec in
      let r = Mfvs.solve g in
      Mfvs.is_feedback_vertex_set g r.Mfvs.fvs)

let prop_mfvs_valid_without_symmetry =
  Testkit.qcheck_case ~count:200 ~name:"mfvs valid without symmetry"
    gen_sgraph
    (fun spec ->
      let g = build_sgraph spec in
      let r = Mfvs.solve ~symmetry:false g in
      Mfvs.is_feedback_vertex_set g r.Mfvs.fvs)

let prop_reduce_preserves_validity =
  Testkit.qcheck_case ~count:200 ~name:"forced vertices plus remainder solve"
    gen_sgraph
    (fun spec ->
      let g = build_sgraph spec in
      let g' = Sgraph.copy g in
      let forced = Mfvs.reduce g' in
      (* forced vertices plus an FVS of the reduced graph covers the original *)
      let rest = Mfvs.solve g' in
      Mfvs.is_feedback_vertex_set g (forced @ rest.Mfvs.fvs))

let test_banked_ring_supervertices () =
  let sn = Dpa_workload.Examples.replicated_bank_ring ~banks:4 ~width:3 in
  let g = Sgraph.of_seq_netlist sn in
  let r = Mfvs.solve g in
  (* each bank collapses into one supervertex of weight 3 *)
  Alcotest.(check int) "four supervertices" 4 (List.length r.Mfvs.supervertices);
  List.iter
    (fun group -> Alcotest.(check int) "bank width" 3 (List.length group))
    r.Mfvs.supervertices;
  (* cutting one whole bank breaks the ring *)
  Alcotest.(check int) "one bank cut" 3 (List.length r.Mfvs.fvs);
  Alcotest.(check bool) "valid" true (Mfvs.is_feedback_vertex_set g r.Mfvs.fvs);
  (* the supervertex path needs no greedy scatter *)
  Alcotest.(check int) "pure reductions" 0 r.Mfvs.greedy_picks

let test_banked_ring_validation () =
  Alcotest.check_raises "bad params"
    (Invalid_argument "Examples.replicated_bank_ring: need banks >= 2 and width >= 1")
    (fun () -> ignore (Dpa_workload.Examples.replicated_bank_ring ~banks:1 ~width:2))

module Exact = Dpa_seq.Exact_mfvs

let test_exact_fig9 () =
  let g = Dpa_workload.Examples.fig9_sgraph () in
  match Exact.solve g with
  | None -> Alcotest.fail "exact solver gave up"
  | Some r ->
    Alcotest.(check int) "optimal weight" 2 r.Exact.weight;
    Alcotest.(check (list int)) "optimal set" [ 2; 3 ] r.Exact.fvs;
    Alcotest.(check bool) "valid" true (Mfvs.is_feedback_vertex_set g r.Exact.fvs)

let test_exact_ring () =
  let ring = Dpa_workload.Examples.ring_counter ~n:6 in
  let g = Sgraph.of_seq_netlist ring in
  match Exact.solve g with
  | None -> Alcotest.fail "exact solver gave up"
  | Some r -> Alcotest.(check int) "ring optimum" 1 r.Exact.weight

let test_exact_acyclic () =
  let g = Sgraph.create 4 in
  Sgraph.add_edge g 0 1;
  Sgraph.add_edge g 1 2;
  match Exact.solve g with
  | None -> Alcotest.fail "exact solver gave up"
  | Some r -> Alcotest.(check int) "empty optimum" 0 r.Exact.weight

let test_exact_node_limit () =
  let g = Dpa_workload.Examples.fig9_sgraph () in
  Alcotest.(check bool) "tiny limit gives up" true (Exact.solve ~node_limit:1 g = None)

(* property: the heuristic never beats the optimum, and the optimum is a
   valid FVS *)
let prop_heuristic_vs_exact =
  Testkit.qcheck_case ~count:120 ~name:"heuristic ≥ exact and exact valid"
    gen_sgraph
    (fun spec ->
      let g = build_sgraph spec in
      match Exact.solve g with
      | None -> true (* search budget exceeded: nothing to check *)
      | Some exact ->
        let heuristic = Mfvs.solve g in
        Mfvs.is_feedback_vertex_set g exact.Exact.fvs
        && List.length heuristic.Mfvs.fvs >= exact.Exact.weight)

let test_unroll_matches_simulation () =
  let ring = Dpa_workload.Examples.ring_counter ~n:3 in
  let cycles = 5 in
  let unrolled = Seq_netlist.unroll ~cycles ring in
  Alcotest.(check int) "inputs" cycles (Netlist.num_inputs unrolled);
  Alcotest.(check int) "outputs" cycles (Netlist.num_outputs unrolled);
  (* all 32 enable sequences: unrolled evaluation = cycle simulation *)
  for m = 0 to 31 do
    let seq_inputs = Array.init cycles (fun t -> [| (m lsr t) land 1 = 1 |]) in
    let simulated = Seq_netlist.simulate ring seq_inputs in
    let flat = Array.init cycles (fun t -> (m lsr t) land 1 = 1) in
    let unrolled_outs = Dpa_logic.Eval.outputs unrolled flat in
    Array.iteri
      (fun t o ->
        Alcotest.(check bool) (Printf.sprintf "m=%d cycle %d" m t) o.(0) unrolled_outs.(t))
      simulated
  done

let test_unroll_validation () =
  let ring = Dpa_workload.Examples.ring_counter ~n:3 in
  Alcotest.check_raises "cycles >= 1"
    (Invalid_argument "Seq_netlist.unroll: need at least one cycle") (fun () ->
      ignore (Seq_netlist.unroll ~cycles:0 ring))

(* property: unrolled netlist equals simulation on random sequential
   circuits and random input streams *)
let prop_unroll_equals_simulate =
  Testkit.qcheck_case ~count:30 ~name:"unroll equals simulation"
    QCheck2.Gen.(pair (int_bound 500) (int_range 1 4))
    (fun (seed, cycles) ->
      let sn =
        Dpa_workload.Generator.sequential
          { Dpa_workload.Generator.default with
            Dpa_workload.Generator.seed;
            n_inputs = 4;
            n_outputs = 2;
            gates_per_output = 5;
            support = 3 }
          ~n_ffs:3
      in
      let unrolled = Seq_netlist.unroll ~cycles sn in
      let rng = Dpa_util.Rng.create (seed + 1) in
      let ok = ref true in
      for _ = 1 to 10 do
        let stream =
          Array.init cycles (fun _ -> Array.init 4 (fun _ -> Dpa_util.Rng.bool rng))
        in
        let simulated = Seq_netlist.simulate sn stream in
        let flat = Array.concat (Array.to_list stream) in
        let outs = Dpa_logic.Eval.outputs unrolled flat in
        Array.iteri
          (fun t frame ->
            Array.iteri (fun k v -> if outs.((t * 2) + k) <> v then ok := false) frame)
          simulated
      done;
      !ok)

module Steady = Dpa_seq.Steady_state

let test_steady_state_ring () =
  (* one-hot ring with enable stuck high: the lazy chain converges on the
     uniform distribution over the n rotations — P(Q)=1/n per stage *)
  let ring = Dpa_workload.Examples.ring_counter ~n:4 in
  let r = Steady.analyze ~input_probs:[| 1.0 |] ring in
  Array.iter (fun p -> Testkit.check_approx ~eps:1e-6 "1/4 per stage" 0.25 p) r.Steady.ff_probs;
  (* exactly the four one-hot states carry probability *)
  let live = Array.to_list r.Steady.state_probs |> List.filter (fun p -> p > 1e-9) in
  Alcotest.(check int) "four live states" 4 (List.length live)

let test_steady_state_ring_drains () =
  (* with a sometimes-low enable, the token eventually dies at the wrap:
     the all-zero state is absorbing *)
  let ring = Dpa_workload.Examples.ring_counter ~n:3 in
  let r = Steady.analyze ~input_probs:[| 0.7 |] ring in
  Testkit.check_approx ~eps:1e-6 "absorbed" 1.0 r.Steady.state_probs.(0);
  Array.iter (fun p -> Testkit.check_approx ~eps:1e-6 "drained" 0.0 p) r.Steady.ff_probs

let test_steady_state_fig7_matches_partition () =
  (* on the fig7 circuit the partition estimate is exact *)
  let sn = Dpa_workload.Examples.fig7_sequential () in
  let exact = Steady.analyze ~input_probs:[| 0.5 |] sn in
  let approx = Partition.probabilities ~input_probs:[| 0.5 |] sn in
  Array.iteri
    (fun k p -> Testkit.check_approx ~eps:1e-6 (Printf.sprintf "ff%d" k) p
        approx.Partition.ff_probs.(k))
    exact.Steady.ff_probs;
  Testkit.check_approx ~eps:1e-6 "q1 is 1/2" 0.5 exact.Steady.ff_probs.(1)

let test_steady_state_validation () =
  let sn = Dpa_workload.Examples.ring_counter ~n:3 in
  Alcotest.check_raises "wrong probs"
    (Invalid_argument "Steady_state.analyze: input_probs length mismatch") (fun () ->
      ignore (Steady.analyze ~input_probs:[| 0.5; 0.5 |] sn))

(* property: steady-state marginals and node probabilities are valid
   probabilities and the state distribution sums to one *)
let prop_steady_state_valid =
  Testkit.qcheck_case ~count:20 ~name:"steady state is a distribution"
    QCheck2.Gen.(int_bound 500)
    (fun seed ->
      let sn =
        Dpa_workload.Generator.sequential
          { Dpa_workload.Generator.default with
            Dpa_workload.Generator.seed;
            n_inputs = 5;
            n_outputs = 2;
            gates_per_output = 5;
            support = 4 }
          ~n_ffs:4
      in
      let r = Steady.analyze ~input_probs:(Array.make 5 0.5) sn in
      let total = Array.fold_left ( +. ) 0.0 r.Steady.state_probs in
      Float.abs (total -. 1.0) < 1e-6
      && Array.for_all (fun p -> p >= -1e-9 && p <= 1.0 +. 1e-9) r.Steady.ff_probs
      && Array.for_all (fun p -> p >= -1e-9 && p <= 1.0 +. 1e-9) r.Steady.node_probs)

let test_fig7_partition () =
  let sn = Dpa_workload.Examples.fig7_sequential () in
  let g = Sgraph.of_seq_netlist sn in
  (* FF1 lies on both cycles (0↔1 and 1↔2) *)
  Alcotest.(check bool) "cyclic" false (Sgraph.is_acyclic g);
  let r = Mfvs.solve g in
  Alcotest.(check (list int)) "cut ff1 only" [ 1 ] r.Mfvs.fvs

let test_partition_probabilities () =
  let sn = Dpa_workload.Examples.fig7_sequential () in
  let r = Partition.probabilities ~input_probs:[| 0.5 |] sn in
  Alcotest.(check (list int)) "fvs" [ 1 ] r.Partition.fvs;
  (* cut flip-flop q1 keeps the 0.5 assumption... its Q probability is the
     seeded cut probability *)
  Testkit.check_approx "q1 cut prob" 0.5 r.Partition.ff_probs.(1);
  (* ff0's D = q1 ∧ x: exact propagation gives 0.25 *)
  Testkit.check_approx "ff0 prob" 0.25 r.Partition.ff_probs.(0);
  Testkit.check_approx "ff2 prob" 0.25 r.Partition.ff_probs.(2);
  (* every node probability is a probability *)
  Array.iter
    (fun p -> Alcotest.(check bool) "in range" true (p >= 0.0 && p <= 1.0))
    r.Partition.node_probs

let test_partition_refinement_converges_ring () =
  (* in the enabled ring, steady-state hot probability is 1/n per stage;
     refinement pulls the cut flip-flop away from the 0.5 seed *)
  let ring = Dpa_workload.Examples.ring_counter ~n:4 in
  let r0 = Partition.probabilities ~input_probs:[| 1.0 |] ring in
  let r8 = Partition.probabilities ~refine:16 ~input_probs:[| 1.0 |] ring in
  Alcotest.(check int) "refinement ran" 16 r8.Partition.iterations;
  (* with enable stuck high the loop is a pure rotation: the cut FF's
     refined probability equals the seed propagated around the cycle *)
  Alcotest.(check bool) "refined prob in range" true
    (Array.for_all (fun p -> p >= 0.0 && p <= 1.0) r8.Partition.ff_probs);
  ignore r0

let test_partition_cut_prob_override () =
  let sn = Dpa_workload.Examples.fig7_sequential () in
  let r = Partition.probabilities ~cut_prob:0.9 ~input_probs:[| 0.5 |] sn in
  Testkit.check_approx "seeded cut prob" 0.9 r.Partition.ff_probs.(1);
  Testkit.check_approx "ff0 follows" 0.45 r.Partition.ff_probs.(0)

let suite =
  [ Alcotest.test_case "seq netlist validation" `Quick test_seq_netlist_validation;
    Alcotest.test_case "ring simulation" `Quick test_ring_counter_simulation;
    Alcotest.test_case "ring disabled" `Quick test_ring_counter_disabled;
    Alcotest.test_case "sgraph basics" `Quick test_sgraph_basics;
    Alcotest.test_case "sgraph bypass self-loop" `Quick test_sgraph_bypass_self_loop;
    Alcotest.test_case "sgraph merge" `Quick test_sgraph_merge;
    Alcotest.test_case "sgraph of ring" `Quick test_sgraph_of_ring;
    Alcotest.test_case "mfvs self loop" `Quick test_mfvs_self_loop_forced;
    Alcotest.test_case "mfvs fig9" `Quick test_mfvs_fig9;
    Alcotest.test_case "mfvs symmetry helps" `Quick test_mfvs_without_symmetry_is_worse_on_fig9;
    Alcotest.test_case "exact mfvs fig9" `Quick test_exact_fig9;
    Alcotest.test_case "exact mfvs ring" `Quick test_exact_ring;
    Alcotest.test_case "exact mfvs acyclic" `Quick test_exact_acyclic;
    Alcotest.test_case "exact mfvs node limit" `Quick test_exact_node_limit;
    prop_heuristic_vs_exact;
    Alcotest.test_case "banked ring supervertices" `Quick test_banked_ring_supervertices;
    Alcotest.test_case "banked ring validation" `Quick test_banked_ring_validation;
    Alcotest.test_case "unroll matches simulation" `Quick test_unroll_matches_simulation;
    Alcotest.test_case "unroll validation" `Quick test_unroll_validation;
    prop_unroll_equals_simulate;
    Alcotest.test_case "steady state ring" `Quick test_steady_state_ring;
    Alcotest.test_case "steady state drain" `Quick test_steady_state_ring_drains;
    Alcotest.test_case "steady state fig7" `Quick test_steady_state_fig7_matches_partition;
    Alcotest.test_case "steady state validation" `Quick test_steady_state_validation;
    prop_steady_state_valid;
    Alcotest.test_case "fig7 partition" `Quick test_fig7_partition;
    Alcotest.test_case "partition probabilities" `Quick test_partition_probabilities;
    Alcotest.test_case "partition refinement" `Quick test_partition_refinement_converges_ring;
    Alcotest.test_case "partition cut prob" `Quick test_partition_cut_prob_override;
    prop_mfvs_valid;
    prop_mfvs_valid_without_symmetry;
    prop_reduce_preserves_validity ]
