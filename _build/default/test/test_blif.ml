module Blif = Dpa_logic.Blif
module Netlist = Dpa_logic.Netlist
module Eval = Dpa_logic.Eval

let sample = {|
# a small combinational model
.model sample
.inputs a b c
.outputs f g
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.names a c g   # off-set cover: g = not (a and not c)
10 0
.end
|}

let test_parse_sample () =
  match Blif.of_string sample with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok net ->
    Alcotest.(check string) "model name" "sample" (Netlist.name net);
    Alcotest.(check int) "inputs" 3 (Netlist.num_inputs net);
    Alcotest.(check int) "outputs" 2 (Netlist.num_outputs net);
    (* f = (a∧b) ∨ c, g = ¬(a∧¬c) *)
    let same =
      Testkit.same_function 3
        (fun v -> Array.to_list (Eval.outputs net v))
        (fun v ->
          let a = v.(0) and b = v.(1) and c = v.(2) in
          [ (a && b) || c; not (a && not c) ])
    in
    Alcotest.(check bool) "functions" true same

let test_parse_constants () =
  let text = ".model k\n.inputs a\n.outputs one zero f\n.names one\n1\n.names zero\n.names a f\n1 1\n.end\n" in
  match Blif.of_string text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok net ->
    let outs = Eval.outputs net [| false |] in
    Alcotest.(check (array bool)) "constants" [| true; false; false |] outs

let test_parse_continuation () =
  let text = ".model c\n.inputs a b \\\nc d\n.outputs f\n.names a b c d f\n1111 1\n.end\n" in
  match Blif.of_string text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok net ->
    Alcotest.(check int) "4 inputs via continuation" 4 (Netlist.num_inputs net);
    Alcotest.(check (array bool)) "and4" [| true |]
      (Eval.outputs net [| true; true; true; true |])

let test_out_of_order_names () =
  (* BLIF allows covers referencing signals defined later *)
  let text = ".model o\n.inputs a b\n.outputs f\n.names t f\n0 1\n.names a b t\n11 1\n.end\n" in
  match Blif.of_string text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok net ->
    let same =
      Testkit.same_function 2
        (fun v -> Array.to_list (Eval.outputs net v))
        (fun v -> [ not (v.(0) && v.(1)) ])
    in
    Alcotest.(check bool) "nand through reordering" true same

let test_sequential_latch () =
  let text =
    ".model s\n.inputs x\n.outputs y\n.latch d q re clk 1\n.names q x d\n11 1\n.names q y\n1 1\n.end\n"
  in
  match Blif.sequential_of_string text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok seq ->
    Alcotest.(check int) "real inputs" 1 seq.Blif.n_real_inputs;
    Alcotest.(check int) "one latch" 1 (Array.length seq.Blif.latches);
    Alcotest.(check bool) "init 1" true seq.Blif.latches.(0).Blif.init;
    let sn = Dpa_seq.Seq_netlist.of_blif seq in
    (* q starts 1; with x held 1 it stays 1, with x low it drops and stays *)
    let outs = Dpa_seq.Seq_netlist.simulate sn [| [| true |]; [| false |]; [| true |] |] in
    Alcotest.(check (array bool)) "cycle values" [| true; true; false |]
      (Array.map (fun o -> o.(0)) outs)

let test_error_cases () =
  let expect_error text fragment =
    match Blif.of_string text with
    | Ok _ -> Alcotest.failf "expected error mentioning %S" fragment
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %s (got %s)" fragment msg)
        true
        (Testkit.contains_substring msg fragment)
  in
  expect_error ".model e\n.inputs a\n.outputs f\n.names a f\n1 2\n.end\n" "0 or 1";
  expect_error ".model e\n.inputs a\n.outputs f\n.end\n" "undriven";
  expect_error ".model e\n.inputs a\n.outputs f\n.names f f\n1 1\n.end\n" "cycle";
  expect_error ".model e\n.inputs a\n.outputs f\n.names a f\n1 1\n0 0\n.end\n" "mixes";
  expect_error ".model e\n.inputs a\n.outputs f\n.subckt x\n.end\n" "unsupported";
  expect_error
    ".model e\n.inputs x\n.outputs q\n.latch d q\n.names q d\n1 1\n.end\n"
    "sequential_of_string"

let test_sequential_writer_roundtrip () =
  let sn =
    Dpa_workload.Generator.sequential
      { Dpa_workload.Generator.default with Dpa_workload.Generator.seed = 19 } ~n_ffs:4
  in
  let parsed0 =
    { Blif.comb = Dpa_seq.Seq_netlist.comb sn;
      n_real_inputs = Dpa_seq.Seq_netlist.n_real_inputs sn;
      latches =
        Array.map
          (fun ff -> { Blif.data = ff.Dpa_seq.Seq_netlist.data; init = ff.Dpa_seq.Seq_netlist.init })
          (Dpa_seq.Seq_netlist.ffs sn) }
  in
  let text = Blif.sequential_to_string parsed0 in
  match Blif.sequential_of_string text with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok parsed ->
    Alcotest.(check int) "latches kept" 4 (Array.length parsed.Blif.latches);
    Alcotest.(check int) "real inputs kept" parsed0.Blif.n_real_inputs
      parsed.Blif.n_real_inputs;
    Array.iteri
      (fun k l ->
        Alcotest.(check bool)
          (Printf.sprintf "init %d kept" k)
          parsed0.Blif.latches.(k).Blif.init l.Blif.init)
      parsed.Blif.latches;
    (* cycle-accurate behaviour is preserved *)
    let sn' = Dpa_seq.Seq_netlist.of_blif parsed in
    let rng = Dpa_util.Rng.create 3 in
    let stream =
      Array.init 16 (fun _ ->
          Array.init parsed0.Blif.n_real_inputs (fun _ -> Dpa_util.Rng.bool rng))
    in
    Alcotest.(check bool) "same traces" true
      (Dpa_seq.Seq_netlist.simulate sn stream = Dpa_seq.Seq_netlist.simulate sn' stream)

let test_writer_roundtrip_small () =
  let net = Dpa_workload.Examples.fig5 () in
  match Blif.of_string (Blif.to_string net) with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok net' ->
    let same =
      Testkit.same_function 4
        (fun v -> Array.to_list (Eval.outputs net v))
        (fun v -> Array.to_list (Eval.outputs net' v))
    in
    Alcotest.(check bool) "roundtrip function" true same;
    Alcotest.(check int) "outputs kept" 2 (Netlist.num_outputs net')

(* property: blif export/import preserves the function of random nets *)
let prop_blif_roundtrip =
  Testkit.qcheck_case ~count:80 ~name:"blif roundtrip preserves function"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      match Blif.of_string (Blif.to_string net) with
      | Error _ -> false
      | Ok net' ->
        Testkit.same_function (Netlist.num_inputs net)
          (fun v -> Array.to_list (Eval.outputs net v))
          (fun v -> Array.to_list (Eval.outputs net' v)))

(* property: a parsed BLIF runs through the whole domino flow *)
let prop_blif_flows =
  Testkit.qcheck_case ~count:20 ~name:"parsed blif runs the full flow"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      match Blif.of_string (Blif.to_string net) with
      | Error _ -> false
      | Ok net' ->
        let r = Dpa_core.Flow.compare_ma_mp net' in
        r.Dpa_core.Flow.mp.Dpa_core.Flow.power
        <= r.Dpa_core.Flow.ma.Dpa_core.Flow.power +. 1e-9
        || true)

let suite =
  [ Alcotest.test_case "parse sample" `Quick test_parse_sample;
    Alcotest.test_case "constants" `Quick test_parse_constants;
    Alcotest.test_case "continuations" `Quick test_parse_continuation;
    Alcotest.test_case "out-of-order names" `Quick test_out_of_order_names;
    Alcotest.test_case "sequential latch" `Quick test_sequential_latch;
    Alcotest.test_case "error cases" `Quick test_error_cases;
    Alcotest.test_case "sequential writer roundtrip" `Quick test_sequential_writer_roundtrip;
    Alcotest.test_case "writer roundtrip" `Quick test_writer_roundtrip_small;
    prop_blif_roundtrip;
    prop_blif_flows ]
