test/testkit.ml: Alcotest Array Dpa_logic Float Printf QCheck2 QCheck_alcotest String
