test/test_edge_cases.ml: Alcotest Array Dpa_bdd Dpa_domino Dpa_logic Dpa_phase Dpa_power Dpa_seq Dpa_synth Dpa_timing Dpa_util Dpa_workload Float Format List Printf Seq Testkit
