test/test_util.ml: Alcotest Array Dpa_util Float Fun List String Testkit
