test/test_bdd.ml: Alcotest Array Dpa_bdd Dpa_logic Dpa_synth Dpa_util Dpa_workload Fun List QCheck2 Testkit
