test/test_power.ml: Alcotest Array Dpa_domino Dpa_logic Dpa_power Dpa_synth Dpa_workload List QCheck2 Testkit
