test/test_domino.ml: Alcotest Array Dpa_domino Dpa_logic Dpa_power Dpa_synth Dpa_timing Dpa_workload List Printf Seq Testkit
