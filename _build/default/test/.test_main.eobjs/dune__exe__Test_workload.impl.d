test/test_workload.ml: Alcotest Array Dpa_core Dpa_logic Dpa_seq Dpa_synth Dpa_workload List Printf QCheck2 Testkit
