test/test_core.ml: Alcotest Array Dpa_core Dpa_logic Dpa_phase Dpa_seq Dpa_synth Dpa_util Dpa_workload List QCheck2 Seq String Testkit
