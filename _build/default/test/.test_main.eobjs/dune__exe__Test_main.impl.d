test/test_main.ml: Alcotest Test_bdd Test_blif Test_core Test_domino Test_edge_cases Test_logic Test_phase Test_power Test_seq Test_sim Test_synth Test_timing Test_util Test_workload
