test/test_phase.ml: Alcotest Array Dpa_bdd Dpa_logic Dpa_phase Dpa_power Dpa_synth Dpa_timing Dpa_util Dpa_workload Float List Printf QCheck2 Testkit
