test/test_synth.ml: Alcotest Array Dpa_logic Dpa_synth Dpa_workload List Seq Testkit
