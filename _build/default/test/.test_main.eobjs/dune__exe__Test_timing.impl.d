test/test_timing.ml: Alcotest Array Dpa_domino Dpa_logic Dpa_power Dpa_synth Dpa_timing Float List Testkit
