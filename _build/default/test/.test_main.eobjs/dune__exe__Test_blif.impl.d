test/test_blif.ml: Alcotest Array Dpa_core Dpa_logic Dpa_seq Dpa_util Dpa_workload Printf Testkit
