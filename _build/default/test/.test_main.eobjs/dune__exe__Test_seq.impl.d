test/test_seq.ml: Alcotest Array Dpa_logic Dpa_seq Dpa_util Dpa_workload Float List Printf QCheck2 Testkit
