test/test_sim.ml: Alcotest Array Dpa_domino Dpa_logic Dpa_power Dpa_sim Dpa_synth Dpa_util Dpa_workload Float List Printf Testkit
