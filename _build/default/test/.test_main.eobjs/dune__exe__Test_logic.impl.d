test/test_logic.ml: Alcotest Array Dpa_logic Dpa_util List String Testkit
