(* Cross-cutting edge cases that don't belong to a single module's happy
   path: degenerate circuits, extreme probabilities, interface corners. *)

module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Phase = Dpa_synth.Phase
module Inverterless = Dpa_synth.Inverterless
module Mapped = Dpa_domino.Mapped

(* ---- degenerate circuits through the whole flow ---- *)

let test_po_driven_by_pi () =
  (* a wire from input to output: no domino gates at all *)
  let t = Netlist.create () in
  let a = Netlist.add_input ~name:"a" t in
  Netlist.add_output t "f" a;
  Seq.iter
    (fun assignment ->
      let inv = Inverterless.realize t assignment in
      let s = Inverterless.stats inv in
      Alcotest.(check int) "no gates" 0 s.Inverterless.domino_gates;
      let mapped = Mapped.map inv in
      let same =
        Testkit.same_function 1
          (fun v -> Array.to_list (Dpa_logic.Eval.outputs t v))
          (fun v -> Array.to_list (Mapped.eval_original_outputs mapped v))
      in
      Alcotest.(check bool) "wire preserved" true same)
    (Phase.enumerate ~num_outputs:1)

let test_po_driven_by_constant () =
  let t = Netlist.create () in
  let _a = Netlist.add_input t in
  let c = Netlist.add_gate t (Gate.Const true) in
  Netlist.add_output t "f" c;
  Seq.iter
    (fun assignment ->
      let mapped = Mapped.map (Inverterless.realize t assignment) in
      Alcotest.(check (array bool)) "constant preserved" [| true |]
        (Mapped.eval_original_outputs mapped [| false |]))
    (Phase.enumerate ~num_outputs:1)

let test_same_driver_two_outputs () =
  (* two POs share one driver; phases may disagree, forcing both
     polarities of the same node *)
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let g = Netlist.add_gate t (Gate.And [| a; b |]) in
  Netlist.add_output t "f" g;
  Netlist.add_output t "g" g;
  let inv = Inverterless.realize t [| Phase.Positive; Phase.Negative |] in
  let s = Inverterless.stats inv in
  Alcotest.(check int) "both polarities built" 1 s.Inverterless.duplicated_nodes;
  let same =
    Testkit.same_function 2
      (fun v -> Array.to_list (Dpa_logic.Eval.outputs t v))
      (fun v -> Array.to_list (Inverterless.eval_original_outputs inv v))
  in
  Alcotest.(check bool) "equivalent" true same

let test_inverter_chain_collapses_through_phases () =
  (* ¬¬¬¬a under any phase: zero domino gates, only boundary inverters *)
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  let n1 = Netlist.add_gate t (Gate.Not a) in
  let n2 = Netlist.add_gate t (Gate.Not n1) in
  let n3 = Netlist.add_gate t (Gate.Not n2) in
  let n4 = Netlist.add_gate t (Gate.Not n3) in
  Netlist.add_output t "f" n4;
  let s = Inverterless.stats (Inverterless.realize t [| Phase.Positive |]) in
  Alcotest.(check int) "no gates" 0 s.Inverterless.domino_gates;
  Alcotest.(check int) "positive literal used" 0 s.Inverterless.input_inverters;
  let s' = Inverterless.stats (Inverterless.realize t [| Phase.Negative |]) in
  Alcotest.(check int) "negative phase needs the bar literal" 1
    s'.Inverterless.input_inverters

(* ---- extreme probabilities ---- *)

let test_extreme_input_probabilities () =
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig5 ()) in
  List.iter
    (fun p ->
      let probs = Array.make 4 p in
      let mapped = Mapped.map (Inverterless.realize net (Phase.all_positive 2)) in
      let r = Dpa_power.Estimate.of_mapped ~input_probs:probs mapped in
      Alcotest.(check bool) "finite power" true (Float.is_finite r.Dpa_power.Estimate.total);
      Array.iter
        (fun s -> Alcotest.(check bool) "probability range" true (s >= 0.0 && s <= 1.0))
        r.Dpa_power.Estimate.node_probs)
    [ 0.0; 1.0; 1e-9; 1.0 -. 1e-9 ]

let test_all_zero_inputs_zero_domino_power () =
  (* with p = 0 everywhere and a monotone positive network, nothing fires *)
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let g = Netlist.add_gate t (Gate.Or [| a; b |]) in
  Netlist.add_output t "f" g;
  let mapped = Mapped.map (Inverterless.realize t (Phase.all_positive 1)) in
  let r = Dpa_power.Estimate.of_mapped ~input_probs:[| 0.0; 0.0 |] mapped in
  Testkit.check_approx "no discharge ever" 0.0 r.Dpa_power.Estimate.total

(* ---- rng / util corners ---- *)

let test_rng_copy_is_independent_snapshot () =
  let a = Dpa_util.Rng.create 9 in
  ignore (Dpa_util.Rng.bits64 a);
  let b = Dpa_util.Rng.copy a in
  let va = Dpa_util.Rng.bits64 a in
  let vb = Dpa_util.Rng.bits64 b in
  Alcotest.(check int64) "copy continues the stream" va vb;
  (* advancing one does not advance the other *)
  ignore (Dpa_util.Rng.bits64 a);
  Alcotest.(check bool) "independent" true (Dpa_util.Rng.bits64 a <> Dpa_util.Rng.bits64 b)

let test_rng_pick () =
  let rng = Dpa_util.Rng.create 2 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    let v = Dpa_util.Rng.pick rng arr in
    Alcotest.(check bool) "picked member" true (Array.exists (fun x -> x = v) arr)
  done

let test_bitset_copy_and_equal () =
  let a = Dpa_util.Bitset.create 70 in
  Dpa_util.Bitset.add a 69;
  let b = Dpa_util.Bitset.copy a in
  Alcotest.(check bool) "copies equal" true (Dpa_util.Bitset.equal a b);
  Dpa_util.Bitset.add b 0;
  Alcotest.(check bool) "diverged" false (Dpa_util.Bitset.equal a b);
  Alcotest.(check bool) "original untouched" false (Dpa_util.Bitset.mem a 0)

(* ---- io parser corners ---- *)

let test_io_duplicate_definition_rejected () =
  (match Dpa_logic.Io.of_string ".inputs a a\n.outputs a\n.end\n" with
  | Error msg -> Alcotest.(check bool) "dup input" true (Testkit.contains_substring msg "redefinition")
  | Ok _ -> Alcotest.fail "expected duplicate-input error");
  match Dpa_logic.Io.of_string ".inputs a\nf = not a\nf = not a\n.outputs f\n.end\n" with
  | Error msg -> Alcotest.(check bool) "dup gate" true (Testkit.contains_substring msg "redefinition")
  | Ok _ -> Alcotest.fail "expected duplicate-gate error"

let test_io_gate_varieties () =
  let text =
    ".model ops\n.inputs a b\nk1 = const1\nk0 = const0\nw = buf a\nx = xor a b\n\
     f = or k1 k0 w x\n.outputs f\n.end\n"
  in
  let net = Dpa_logic.Io.parse_exn text in
  (* f = 1 ∨ 0 ∨ a ∨ (a⊕b) — always true because of const1 *)
  Alcotest.(check bool) "const1 dominates" true
    (Testkit.same_function 2
       (fun v -> Array.to_list (Dpa_logic.Eval.outputs net v))
       (fun _ -> [ true ]))

let test_io_malformed_arity () =
  match Dpa_logic.Io.of_string ".inputs a\nf = not a a\n.outputs f\n.end\n" with
  | Error msg -> Alcotest.(check bool) "arity error" true (Testkit.contains_substring msg "malformed")
  | Ok _ -> Alcotest.fail "expected arity error"

(* ---- gate helpers ---- *)

let test_gate_dual_and_errors () =
  Alcotest.(check bool) "and dual" true
    (Gate.equal (Gate.dual (Gate.And [| 1; 2 |])) (Gate.Or [| 1; 2 |]));
  Alcotest.(check bool) "or dual" true
    (Gate.equal (Gate.dual (Gate.Or [| 3 |])) (Gate.And [| 3 |]));
  Alcotest.check_raises "not has no dual"
    (Invalid_argument "Gate.dual: only AND/OR gates have a DeMorgan dual") (fun () ->
      ignore (Gate.dual (Gate.Not 0)))

let test_gate_pp () =
  let s g = Format.asprintf "%a" Gate.pp g in
  Alcotest.(check string) "and" "and(1,2,3)" (s (Gate.And [| 1; 2; 3 |]));
  Alcotest.(check string) "not" "not(7)" (s (Gate.Not 7));
  Alcotest.(check string) "const" "const1" (s (Gate.Const true));
  Alcotest.(check string) "xor" "xor(1,2)" (s (Gate.Xor (1, 2)))

let test_eval_too_many_inputs () =
  let t = Netlist.create () in
  for _ = 1 to 21 do
    ignore (Netlist.add_input t)
  done;
  Netlist.add_output t "f" 0;
  Alcotest.check_raises "enumeration bound"
    (Invalid_argument "Eval: 21 inputs is too many to enumerate") (fun () ->
      ignore (Dpa_logic.Eval.output_table t))

(* ---- netlist copy independence ---- *)

let test_netlist_copy_independent () =
  let t = Netlist.create () in
  let a = Netlist.add_input ~name:"a" t in
  Netlist.add_output t "f" a;
  let t' = Netlist.copy t in
  let b = Netlist.add_input ~name:"b" t' in
  Netlist.add_output t' "g" b;
  Alcotest.(check int) "original inputs" 1 (Netlist.num_inputs t);
  Alcotest.(check int) "copy inputs" 2 (Netlist.num_inputs t');
  Alcotest.(check int) "original outputs" 1 (Netlist.num_outputs t)

(* ---- annealing determinism ---- *)

let test_annealing_deterministic () =
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig5 ()) in
  let probs = Array.make 4 0.7 in
  let run () =
    let m = Dpa_phase.Measure.create ~input_probs:probs net in
    let rng = Dpa_util.Rng.create 31 in
    (Dpa_phase.Annealing.run rng m ~num_outputs:2).Dpa_phase.Annealing.power
  in
  Testkit.check_approx "same seed, same answer" (run ()) (run ())

(* ---- timing literal arrival ---- *)

let test_sta_negative_literal_arrives_late () =
  let t = Netlist.create () in
  let a = Netlist.add_input ~name:"a" t in
  let na = Netlist.add_gate t (Gate.Not a) in
  let b = Netlist.add_input ~name:"b" t in
  let g = Netlist.add_gate t (Gate.And [| na; b |]) in
  Netlist.add_output t "f" g;
  let mapped = Mapped.map (Inverterless.realize t (Phase.all_positive 1)) in
  let r = Dpa_timing.Sta.analyze mapped in
  (* the ~a literal input carries the inverter delay; b arrives at 0 *)
  let blk = Mapped.net mapped in
  let lits = Mapped.literals mapped in
  Array.iteri
    (fun pos id ->
      let _, pol = lits.(pos) in
      match pol with
      | Inverterless.Neg ->
        Testkit.check_approx "bar literal late" Dpa_timing.Delay.default.Dpa_timing.Delay.inverter_delay
          r.Dpa_timing.Sta.arrival.(id)
      | Inverterless.Pos -> Testkit.check_approx "true literal at 0" 0.0 r.Dpa_timing.Sta.arrival.(id))
    (Netlist.inputs blk)

(* ---- generator bias spread ---- *)

let test_generator_bias_spread_changes_mix () =
  let base =
    { Dpa_workload.Generator.default with
      Dpa_workload.Generator.seed = 7;
      n_outputs = 2;
      gates_per_output = 30;
      inverter_prob = 0.0 }
  in
  let count_kind params =
    let net = Dpa_workload.Generator.combinational params in
    let ands = ref 0 and ors = ref 0 in
    Netlist.iter_nodes
      (fun _ g ->
        match g with
        | Gate.And _ -> incr ands
        | Gate.Or _ -> incr ors
        | Gate.Input | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.Xor _ -> ())
      net;
    (!ands, !ors)
  in
  let spread_ands, spread_ors =
    count_kind { base with Dpa_workload.Generator.bias_spread = 0.45 }
  in
  (* with outputs alternating strongly OR- and AND-leaning, both kinds
     must be present in quantity *)
  Alcotest.(check bool) "both kinds present" true (spread_ands > 5 && spread_ors > 5)

(* ---- blif latch init variants ---- *)

let test_blif_latch_init_variants () =
  let parse init =
    let text =
      Printf.sprintf ".model l\n.inputs x\n.outputs q\n.latch d q %s\n.names x d\n1 1\n.end\n"
        init
    in
    match Dpa_logic.Blif.sequential_of_string text with
    | Ok seq -> seq.Dpa_logic.Blif.latches.(0).Dpa_logic.Blif.init
    | Error msg -> Alcotest.failf "parse failed: %s" msg
  in
  Alcotest.(check bool) "init 0" false (parse "0");
  Alcotest.(check bool) "init 1" true (parse "1");
  Alcotest.(check bool) "init 2 (don't care)" false (parse "2");
  Alcotest.(check bool) "init 3 (unknown)" false (parse "3");
  Alcotest.(check bool) "typed latch" true (parse "re clk 1")

let test_writer_label_collisions () =
  (* a user-chosen name "n2" must not merge with the generated label of
     the unnamed node 2 when serializing *)
  let t = Netlist.create () in
  let a = Netlist.add_input ~name:"a" t in
  let b = Netlist.add_input ~name:"n2" t in
  (* node 2: unnamed — its generated label would naively be "n2" *)
  let g = Netlist.add_gate t (Gate.And [| a; b |]) in
  let h = Netlist.add_gate t (Gate.Or [| g; a |]) in
  Netlist.add_output t "f" h;
  List.iter
    (fun (label, text) ->
      let reparsed =
        match label with
        | `Dln -> Dpa_logic.Io.parse_exn text
        | `Blif -> (
          match Dpa_logic.Blif.of_string text with
          | Ok net -> net
          | Error msg -> Alcotest.failf "blif reparse: %s" msg)
      in
      let same =
        Testkit.same_function 2
          (fun v -> Array.to_list (Dpa_logic.Eval.outputs t v))
          (fun v -> Array.to_list (Dpa_logic.Eval.outputs reparsed v))
      in
      Alcotest.(check bool) "function survives collision" true same)
    [ (`Dln, Dpa_logic.Io.to_string t); (`Blif, Dpa_logic.Blif.to_string t) ]

let test_reorder_pass_cap () =
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Examples.carry_chain ~width:4) in
  let r = Dpa_bdd.Reorder.refine ~max_passes:1 net (Dpa_bdd.Ordering.declaration net) in
  Alcotest.(check bool) "at most one pass" true (r.Dpa_bdd.Reorder.passes <= 1);
  Alcotest.(check bool) "never worse" true
    (r.Dpa_bdd.Reorder.nodes <= r.Dpa_bdd.Reorder.initial_nodes)

let test_exact_mfvs_weighted_bypass_safety () =
  (* a weight-2 supervertex on a 2-cycle with a weight-1 partner: the
     optimum must cut the light vertex, and the weight-guarded bypass must
     not be fooled into swapping toward the heavy one *)
  let g = Dpa_seq.Sgraph.create 3 in
  Dpa_seq.Sgraph.add_edge g 0 1;
  Dpa_seq.Sgraph.add_edge g 1 0;
  Dpa_seq.Sgraph.add_edge g 1 2;
  Dpa_seq.Sgraph.add_edge g 2 1;
  Dpa_seq.Sgraph.merge g ~into:1 2 (* vertex 1 now weighs 2 *);
  match Dpa_seq.Exact_mfvs.solve g with
  | None -> Alcotest.fail "gave up"
  | Some r ->
    Alcotest.(check int) "optimal weight 1" 1 r.Dpa_seq.Exact_mfvs.weight;
    Alcotest.(check (list int)) "cuts the light vertex" [ 0 ] r.Dpa_seq.Exact_mfvs.fvs

let test_tuple_limit_cap () =
  let p =
    { Dpa_workload.Generator.default with
      Dpa_workload.Generator.seed = 5;
      n_outputs = 6;
      gates_per_output = 6 }
  in
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Generator.combinational p) in
  let probs = Array.make (Netlist.num_inputs net) 0.5 in
  let cost = Dpa_phase.Cost.make net in
  let base = Dpa_bdd.Build.probabilities ~input_probs:probs net in
  let m = Dpa_phase.Measure.create ~input_probs:probs net in
  (* C(6,2) = 15 pairs; cap at 4 *)
  let r = Dpa_phase.Tuple_search.run ~tuple_limit:4 ~k:2 m ~cost ~base_probs:base in
  Alcotest.(check int) "candidate cap respected" 4
    r.Dpa_phase.Tuple_search.tuples_considered;
  Alcotest.(check bool) "still improves or holds" true
    (r.Dpa_phase.Tuple_search.power <= r.Dpa_phase.Tuple_search.initial_power +. 1e-9)

let test_netstats_on_structured_circuit () =
  let s = Dpa_logic.Netstats.compute (Dpa_workload.Examples.decoder ~bits:3) in
  (* 3 inverters + 8 AND3 terms *)
  Alcotest.(check (list (pair string int))) "decoder mix"
    [ ("and3", 8); ("not", 3) ]
    (List.sort compare s.Dpa_logic.Netstats.gate_histogram);
  Alcotest.(check int) "depth 2" 2 s.Dpa_logic.Netstats.max_depth

let test_table_float_decimals () =
  Alcotest.(check string) "default decimals" "1.23" (Dpa_util.Table.cell_float 1.2345);
  Alcotest.(check string) "explicit decimals" "1.2345"
    (Dpa_util.Table.cell_float ~decimals:4 1.2345)

let suite =
  [ Alcotest.test_case "writer label collisions" `Quick test_writer_label_collisions;
    Alcotest.test_case "reorder pass cap" `Quick test_reorder_pass_cap;
    Alcotest.test_case "exact mfvs weighted" `Quick test_exact_mfvs_weighted_bypass_safety;
    Alcotest.test_case "tuple limit cap" `Quick test_tuple_limit_cap;
    Alcotest.test_case "netstats structured" `Quick test_netstats_on_structured_circuit;
    Alcotest.test_case "table decimals" `Quick test_table_float_decimals;
    Alcotest.test_case "PO driven by PI" `Quick test_po_driven_by_pi;
    Alcotest.test_case "PO driven by constant" `Quick test_po_driven_by_constant;
    Alcotest.test_case "shared driver, split phases" `Quick test_same_driver_two_outputs;
    Alcotest.test_case "inverter chain" `Quick test_inverter_chain_collapses_through_phases;
    Alcotest.test_case "extreme probabilities" `Quick test_extreme_input_probabilities;
    Alcotest.test_case "all-zero inputs" `Quick test_all_zero_inputs_zero_domino_power;
    Alcotest.test_case "rng copy" `Quick test_rng_copy_is_independent_snapshot;
    Alcotest.test_case "rng pick" `Quick test_rng_pick;
    Alcotest.test_case "bitset copy/equal" `Quick test_bitset_copy_and_equal;
    Alcotest.test_case "io duplicate definitions" `Quick test_io_duplicate_definition_rejected;
    Alcotest.test_case "io gate varieties" `Quick test_io_gate_varieties;
    Alcotest.test_case "io malformed arity" `Quick test_io_malformed_arity;
    Alcotest.test_case "gate dual" `Quick test_gate_dual_and_errors;
    Alcotest.test_case "gate pp" `Quick test_gate_pp;
    Alcotest.test_case "eval enumeration bound" `Quick test_eval_too_many_inputs;
    Alcotest.test_case "netlist copy independence" `Quick test_netlist_copy_independent;
    Alcotest.test_case "annealing determinism" `Quick test_annealing_deterministic;
    Alcotest.test_case "sta literal arrival" `Quick test_sta_negative_literal_arrives_late;
    Alcotest.test_case "generator bias spread" `Quick test_generator_bias_spread_changes_mix;
    Alcotest.test_case "blif latch inits" `Quick test_blif_latch_init_variants ]
