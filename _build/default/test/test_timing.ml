module Delay = Dpa_timing.Delay
module Sta = Dpa_timing.Sta
module Resize = Dpa_timing.Resize
module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Phase = Dpa_synth.Phase
module Mapped = Dpa_domino.Mapped
module Cell = Dpa_domino.Cell

let test_intrinsic_delays () =
  let m = Delay.default in
  (* AND cells pay per series transistor; OR cells have a single stage *)
  let and4 = Delay.cell_intrinsic m (Cell.dynamic Cell.And 4) in
  let or4 = Delay.cell_intrinsic m (Cell.dynamic Cell.Or 4) in
  Alcotest.(check bool) "and slower than or" true (and4 > or4);
  Testkit.check_approx "and4" (0.5 +. (0.3 *. 4.0)) and4;
  Testkit.check_approx "or4" (0.5 +. 0.3) or4;
  Testkit.check_approx "inv" 0.4 (Delay.cell_intrinsic m Cell.Static_inverter)

let chain_mapped assignment =
  (* three-level chain: f = ((a∧b)∨c)∧d *)
  let t = Netlist.create () in
  let a = Netlist.add_input ~name:"a" t in
  let b = Netlist.add_input ~name:"b" t in
  let c = Netlist.add_input ~name:"c" t in
  let d = Netlist.add_input ~name:"d" t in
  let g1 = Netlist.add_gate t (Gate.And [| a; b |]) in
  let g2 = Netlist.add_gate t (Gate.Or [| g1; c |]) in
  let g3 = Netlist.add_gate t (Gate.And [| g2; d |]) in
  Netlist.add_output t "f" g3;
  Mapped.map (Dpa_synth.Inverterless.realize t assignment)

let test_sta_arrival_monotone () =
  let mapped = chain_mapped [| Phase.Positive |] in
  let r = Sta.analyze mapped in
  (* arrivals increase along the chain *)
  let net = Mapped.net mapped in
  Netlist.iter_nodes
    (fun i g ->
      Array.iter
        (fun x ->
          Alcotest.(check bool) "arrival ordering" true (r.Sta.arrival.(x) < r.Sta.arrival.(i)))
        (Gate.fanins g))
    net;
  Alcotest.(check bool) "positive delay" true (r.Sta.critical_delay > 0.0);
  Testkit.check_approx "critical = output" r.Sta.critical_delay r.Sta.output_arrival.(0)

let test_sta_critical_path_connected () =
  let mapped = chain_mapped [| Phase.Positive |] in
  let r = Sta.analyze mapped in
  let net = Mapped.net mapped in
  (* the path is a connected chain ending at the output driver *)
  let rec check = function
    | [] | [ _ ] -> ()
    | x :: (y :: _ as rest) ->
      let fis = Array.to_list (Netlist.fanins net y) in
      Alcotest.(check bool) "edge on path" true (List.mem x fis);
      check rest
  in
  check r.Sta.critical_path;
  let _, out_driver = (Netlist.outputs net).(0) in
  Alcotest.(check int) "ends at driver" out_driver
    (List.nth r.Sta.critical_path (List.length r.Sta.critical_path - 1))

let test_negative_phase_costs_delay () =
  let pos = Sta.analyze (chain_mapped [| Phase.Positive |]) in
  let neg = Sta.analyze (chain_mapped [| Phase.Negative |]) in
  (* the dual block has the same depth but pays boundary inverters *)
  Alcotest.(check bool) "negative phase slower" true
    (neg.Sta.critical_delay > pos.Sta.critical_delay)

let test_resize_meets_clock () =
  let mapped = chain_mapped [| Phase.Positive |] in
  let unsized = (Sta.analyze mapped).Sta.critical_delay in
  let clock = 0.7 *. unsized in
  let r = Resize.meet ~clock mapped in
  Alcotest.(check bool) "met" true r.Resize.met;
  Alcotest.(check bool) "faster" true (r.Resize.final_delay <= clock);
  Alcotest.(check bool) "paid in drive" true (r.Resize.upsized_cells > 0);
  Testkit.check_approx "initial recorded" unsized r.Resize.initial_delay

let test_resize_noop_when_met () =
  let mapped = chain_mapped [| Phase.Positive |] in
  let unsized = (Sta.analyze mapped).Sta.critical_delay in
  let r = Resize.meet ~clock:(2.0 *. unsized) mapped in
  Alcotest.(check bool) "met" true r.Resize.met;
  Alcotest.(check int) "no iterations" 0 r.Resize.iterations;
  Alcotest.(check int) "no upsizing" 0 r.Resize.upsized_cells

let test_resize_gives_up_gracefully () =
  let mapped = chain_mapped [| Phase.Positive |] in
  let r = Resize.meet ~max_drive:1.5 ~clock:0.01 mapped in
  Alcotest.(check bool) "not met" false r.Resize.met

let test_resize_increases_power () =
  let probs = Array.make 4 0.5 in
  let mapped = chain_mapped [| Phase.Positive |] in
  let before = (Dpa_power.Estimate.of_mapped ~input_probs:probs mapped).Dpa_power.Estimate.total in
  let unsized = (Sta.analyze mapped).Sta.critical_delay in
  ignore (Resize.meet ~clock:(0.7 *. unsized) mapped);
  let after = (Dpa_power.Estimate.of_mapped ~input_probs:probs mapped).Dpa_power.Estimate.total in
  Alcotest.(check bool) "timing closure costs power" true (after > before)

let test_resize_rejects_bad_clock () =
  let mapped = chain_mapped [| Phase.Positive |] in
  Alcotest.check_raises "clock must be positive"
    (Invalid_argument "Resize.meet: clock must be positive") (fun () ->
      ignore (Resize.meet ~clock:0.0 mapped))

(* property: STA arrival times are consistent (every gate later than its
   fanins) on random mapped blocks *)
let prop_sta_consistent =
  Testkit.qcheck_case ~count:60 ~name:"sta arrivals exceed fanin arrivals"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Dpa_synth.Opt.optimize net in
      let a = Phase.all_positive (Netlist.num_outputs net) in
      let mapped = Mapped.map (Dpa_synth.Inverterless.realize net a) in
      let r = Sta.analyze mapped in
      let ok = ref true in
      Netlist.iter_nodes
        (fun i g ->
          match Mapped.cell_of_node mapped i with
          | Some _ ->
            Array.iter
              (fun x -> if r.Sta.arrival.(x) >= r.Sta.arrival.(i) then ok := false)
              (Gate.fanins g)
          | None -> ())
        (Mapped.net mapped);
      !ok)

(* property: upsizing can only reduce the critical delay *)
let prop_resize_monotone =
  Testkit.qcheck_case ~count:40 ~name:"resize never slows the block"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Dpa_synth.Opt.optimize net in
      let a = Phase.all_positive (Netlist.num_outputs net) in
      let mapped = Mapped.map (Dpa_synth.Inverterless.realize net a) in
      let before = (Sta.analyze mapped).Sta.critical_delay in
      let r = Resize.meet ~clock:(0.8 *. Float.max before 1e-6) mapped in
      r.Resize.final_delay <= before +. 1e-9)

let suite =
  [ Alcotest.test_case "intrinsic delays" `Quick test_intrinsic_delays;
    Alcotest.test_case "sta monotone" `Quick test_sta_arrival_monotone;
    Alcotest.test_case "sta critical path" `Quick test_sta_critical_path_connected;
    Alcotest.test_case "negative phase delay" `Quick test_negative_phase_costs_delay;
    Alcotest.test_case "resize meets clock" `Quick test_resize_meets_clock;
    Alcotest.test_case "resize noop" `Quick test_resize_noop_when_met;
    Alcotest.test_case "resize gives up" `Quick test_resize_gives_up_gracefully;
    Alcotest.test_case "resize costs power" `Quick test_resize_increases_power;
    Alcotest.test_case "resize clock validation" `Quick test_resize_rejects_bad_clock;
    prop_sta_consistent;
    prop_resize_monotone ]
