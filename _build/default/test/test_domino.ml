module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Cell = Dpa_domino.Cell
module Library = Dpa_domino.Library
module Mapped = Dpa_domino.Mapped
module Phase = Dpa_synth.Phase
module Inverterless = Dpa_synth.Inverterless

let test_cell_basics () =
  let a3 = Cell.dynamic Cell.And 3 in
  Alcotest.(check int) "width" 3 (Cell.width a3);
  Alcotest.(check int) "series" 3 (Cell.series_transistors a3);
  Alcotest.(check string) "name" "DAND3" (Cell.name a3);
  let o4 = Cell.dynamic Cell.Or 4 in
  Alcotest.(check int) "or series" 1 (Cell.series_transistors o4);
  Alcotest.(check string) "or name" "DOR4" (Cell.name o4);
  Alcotest.(check int) "inv width" 1 (Cell.width Cell.Static_inverter);
  Alcotest.check_raises "width 1 rejected" (Invalid_argument "Cell.dynamic: width 1 < 2")
    (fun () -> ignore (Cell.dynamic Cell.And 1))

let test_library_limits () =
  let lib = Library.default in
  Alcotest.(check bool) "and4 legal" true (Library.legal_width lib Cell.And 4);
  Alcotest.(check bool) "and5 illegal" false (Library.legal_width lib Cell.And 5);
  Alcotest.(check bool) "or8 legal" true (Library.legal_width lib Cell.Or 8);
  Alcotest.(check bool) "or9 illegal" false (Library.legal_width lib Cell.Or 9);
  Testkit.check_approx "unit cap" 1.0 (lib.Library.capacitance (Cell.dynamic Cell.And 2));
  Testkit.check_approx "zero penalty" 0.0 (lib.Library.penalty (Cell.dynamic Cell.And 4))

let test_series_penalty () =
  let lib = Library.with_series_penalty ~per_stage:0.25 Library.default in
  Testkit.check_approx "and4 penalty" 0.75 (lib.Library.penalty (Cell.dynamic Cell.And 4));
  Testkit.check_approx "or4 penalty" 0.0 (lib.Library.penalty (Cell.dynamic Cell.Or 4));
  Testkit.check_approx "inv penalty" 0.0 (lib.Library.penalty Cell.Static_inverter)

let wide_net () =
  let t = Netlist.create () in
  let xs = Array.init 10 (fun k -> Netlist.add_input ~name:(Printf.sprintf "x%d" k) t) in
  let wide_and = Netlist.add_gate t (Gate.And xs) in
  let wide_or = Netlist.add_gate t (Gate.Or xs) in
  Netlist.add_output t "f" wide_and;
  Netlist.add_output t "g" wide_or;
  t

let test_mapping_width_limits () =
  let net = wide_net () in
  let inv = Inverterless.realize net (Phase.all_positive 2) in
  let mapped = Mapped.map inv in
  Netlist.iter_nodes
    (fun i _ ->
      match Mapped.cell_of_node mapped i with
      | None -> ()
      | Some (Cell.Dynamic (Cell.And, w)) ->
        Alcotest.(check bool) "and width" true (w >= 2 && w <= 4)
      | Some (Cell.Dynamic (Cell.Or, w)) ->
        Alcotest.(check bool) "or width" true (w >= 2 && w <= 8)
      | Some (Cell.Compound _) -> Alcotest.fail "compound without opting in"
      | Some Cell.Static_inverter -> Alcotest.fail "inverter inside block")
    (Mapped.net mapped);
  (* 10-input AND under limit 4 → 4+4+2 then 3: 4 cells; OR → 8+2 then 2: 3 cells *)
  Alcotest.(check int) "cells" 7 (Mapped.dynamic_cells mapped)

let test_mapping_preserves_function () =
  let net = wide_net () in
  Seq.iter
    (fun assignment ->
      let inv = Inverterless.realize net assignment in
      let mapped = Mapped.map inv in
      let same =
        Testkit.same_function 10
          (fun v -> Array.to_list (Dpa_logic.Eval.outputs net v))
          (fun v -> Array.to_list (Mapped.eval_original_outputs mapped v))
      in
      Alcotest.(check bool) (Phase.to_string assignment) true same)
    (Phase.enumerate ~num_outputs:2)

let test_mapped_size_accounting () =
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig5 ()) in
  let inv = Inverterless.realize net [| Phase.Positive; Phase.Negative |] in
  let mapped = Mapped.map inv in
  Alcotest.(check int) "dynamic" 4 (Mapped.dynamic_cells mapped);
  Alcotest.(check int) "in invs" 4 (Mapped.input_inverters mapped);
  Alcotest.(check int) "out invs" 1 (Mapped.output_inverters mapped);
  Alcotest.(check int) "size" 9 (Mapped.size mapped)

let test_drive_defaults_and_set () =
  let net = wide_net () in
  let mapped = Mapped.map (Inverterless.realize net (Phase.all_positive 2)) in
  Netlist.iter_nodes (fun i _ -> Testkit.check_approx "unit drive" 1.0 (Mapped.drive mapped i))
    (Mapped.net mapped);
  Mapped.set_drive mapped 0 2.5;
  Testkit.check_approx "set drive" 2.5 (Mapped.drive mapped 0);
  Alcotest.check_raises "positive drives only"
    (Invalid_argument "Mapped.set_drive: drive must be positive") (fun () ->
      Mapped.set_drive mapped 0 0.0)

(* property: mapping preserves the function for random netlists and random
   assignments *)
let prop_mapping_equivalent =
  Testkit.qcheck_case ~count:80 ~name:"mapping preserves function"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Dpa_synth.Opt.optimize net in
      Seq.for_all
        (fun assignment ->
          let mapped = Mapped.map (Inverterless.realize net assignment) in
          Testkit.same_function (Netlist.num_inputs net)
            (fun v -> Array.to_list (Dpa_logic.Eval.outputs net v))
            (fun v -> Array.to_list (Mapped.eval_original_outputs mapped v)))
        (Phase.enumerate ~num_outputs:(Netlist.num_outputs net)))

(* property: every mapped dynamic cell respects library width limits *)
let prop_mapping_widths_legal =
  Testkit.qcheck_case ~count:80 ~name:"mapped widths legal"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Dpa_synth.Opt.optimize net in
      let a = Phase.all_positive (Netlist.num_outputs net) in
      let mapped = Mapped.map (Inverterless.realize net a) in
      let ok = ref true in
      Netlist.iter_nodes
        (fun i _ ->
          match Mapped.cell_of_node mapped i with
          | Some (Cell.Dynamic (kind, w)) ->
            if not (Library.legal_width (Mapped.library mapped) kind w) then ok := false
          | Some (Cell.Compound _) | Some Cell.Static_inverter -> ok := false
          | None -> ())
        (Mapped.net mapped);
      !ok)

let test_compound_cell_model () =
  let c = Cell.compound [ 2; 3; 1 ] in
  Alcotest.(check string) "sorted name" "DAO321" (Cell.name c);
  Alcotest.(check int) "total width" 6 (Cell.width c);
  Alcotest.(check int) "deepest leg" 3 (Cell.series_transistors c);
  Alcotest.check_raises "one leg rejected"
    (Invalid_argument "Cell.compound: need at least 2 legs") (fun () ->
      ignore (Cell.compound [ 3 ]))

(* f = (a∧b) ∨ (c∧d∧e) ∨ g : one compound cell when enabled *)
let aoi_net () =
  let t = Netlist.create () in
  let xs = Array.init 6 (fun k -> Netlist.add_input ~name:(Printf.sprintf "x%d" k) t) in
  let t1 = Netlist.add_gate t (Gate.And [| xs.(0); xs.(1) |]) in
  let t2 = Netlist.add_gate t (Gate.And [| xs.(2); xs.(3); xs.(4) |]) in
  let f = Netlist.add_gate t (Gate.Or [| t1; t2; xs.(5) |]) in
  Netlist.add_output t "f" f;
  t

let compound_library = Library.with_compound Library.default

let test_compound_absorption () =
  let net = aoi_net () in
  let inv = Inverterless.realize net (Phase.all_positive 1) in
  let plain = Mapped.map inv in
  let fancy = Mapped.map ~library:compound_library inv in
  Alcotest.(check int) "plain cells" 3 (Mapped.dynamic_cells plain);
  Alcotest.(check int) "compound cells" 1 (Mapped.dynamic_cells fancy);
  (* the OR became a DAO321; the ANDs are absorbed *)
  let found = ref None in
  Netlist.iter_nodes
    (fun i _ ->
      match Mapped.cell_of_node fancy i with
      | Some (Cell.Compound legs) -> found := Some legs
      | Some _ | None -> ())
    (Mapped.net fancy);
  (match !found with
  | Some legs -> Alcotest.(check (list int)) "legs" [ 3; 2; 1 ] (List.sort (fun a b -> compare b a) legs)
  | None -> Alcotest.fail "no compound cell formed");
  let absorbed = ref 0 in
  Netlist.iter_nodes
    (fun i _ -> if Mapped.is_absorbed fancy i then incr absorbed)
    (Mapped.net fancy);
  Alcotest.(check int) "two absorbed" 2 !absorbed

let test_compound_preserves_function () =
  let net = aoi_net () in
  let inv = Inverterless.realize net (Phase.all_positive 1) in
  let fancy = Mapped.map ~library:compound_library inv in
  let same =
    Testkit.same_function 6
      (fun v -> Array.to_list (Dpa_logic.Eval.outputs net v))
      (fun v -> Array.to_list (Mapped.eval_original_outputs fancy v))
  in
  Alcotest.(check bool) "function preserved" true same

let test_compound_reduces_power_and_delay_counts () =
  let net = aoi_net () in
  let inv = Inverterless.realize net (Phase.all_positive 1) in
  let plain = Mapped.map inv in
  let fancy = Mapped.map ~library:compound_library inv in
  let probs = Array.make 6 0.5 in
  let p_plain = (Dpa_power.Estimate.of_mapped ~input_probs:probs plain).Dpa_power.Estimate.total in
  let p_fancy = (Dpa_power.Estimate.of_mapped ~input_probs:probs fancy).Dpa_power.Estimate.total in
  Alcotest.(check bool) "less power" true (p_fancy < p_plain);
  let d_plain = (Dpa_timing.Sta.analyze plain).Dpa_timing.Sta.critical_delay in
  let d_fancy = (Dpa_timing.Sta.analyze fancy).Dpa_timing.Sta.critical_delay in
  Alcotest.(check bool) "no slower" true (d_fancy <= d_plain +. 1e-9)

let test_compound_respects_fanout () =
  (* an AND with fanout 2 must not be absorbed *)
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let c = Netlist.add_input t in
  let ab = Netlist.add_gate t (Gate.And [| a; b |]) in
  let f = Netlist.add_gate t (Gate.Or [| ab; c |]) in
  Netlist.add_output t "f" f;
  Netlist.add_output t "t" ab;
  let inv = Inverterless.realize t (Phase.all_positive 2) in
  let fancy = Mapped.map ~library:compound_library inv in
  Netlist.iter_nodes
    (fun i _ ->
      Alcotest.(check bool) "nothing absorbed" false (Mapped.is_absorbed fancy i))
    (Mapped.net fancy)

(* property: compound mapping preserves functionality *)
let prop_compound_equivalent =
  Testkit.qcheck_case ~count:60 ~name:"compound mapping preserves function"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Dpa_synth.Opt.optimize net in
      let a = Phase.all_positive (Netlist.num_outputs net) in
      let mapped = Mapped.map ~library:compound_library (Inverterless.realize net a) in
      Testkit.same_function (Netlist.num_inputs net)
        (fun v -> Array.to_list (Dpa_logic.Eval.outputs net v))
        (fun v -> Array.to_list (Mapped.eval_original_outputs mapped v)))

(* property: compound mapping never increases cells or estimated power *)
let prop_compound_never_worse =
  Testkit.qcheck_case ~count:60 ~name:"compound mapping never costs cells or power"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Dpa_synth.Opt.optimize net in
      let a = Phase.all_positive (Netlist.num_outputs net) in
      let inv = Inverterless.realize net a in
      let plain = Mapped.map inv in
      let fancy = Mapped.map ~library:compound_library inv in
      let probs = Array.make (Netlist.num_inputs net) 0.5 in
      let p0 = (Dpa_power.Estimate.of_mapped ~input_probs:probs plain).Dpa_power.Estimate.total in
      let p1 = (Dpa_power.Estimate.of_mapped ~input_probs:probs fancy).Dpa_power.Estimate.total in
      Mapped.size fancy <= Mapped.size plain && p1 <= p0 +. 1e-9)

let suite =
  [ Alcotest.test_case "cell basics" `Quick test_cell_basics;
    Alcotest.test_case "compound cell model" `Quick test_compound_cell_model;
    Alcotest.test_case "compound absorption" `Quick test_compound_absorption;
    Alcotest.test_case "compound function" `Quick test_compound_preserves_function;
    Alcotest.test_case "compound power/delay" `Quick test_compound_reduces_power_and_delay_counts;
    Alcotest.test_case "compound fanout rule" `Quick test_compound_respects_fanout;
    prop_compound_equivalent;
    prop_compound_never_worse;
    Alcotest.test_case "library limits" `Quick test_library_limits;
    Alcotest.test_case "series penalty" `Quick test_series_penalty;
    Alcotest.test_case "mapping width limits" `Quick test_mapping_width_limits;
    Alcotest.test_case "mapping preserves function" `Quick test_mapping_preserves_function;
    Alcotest.test_case "size accounting" `Quick test_mapped_size_accounting;
    Alcotest.test_case "drive set/get" `Quick test_drive_defaults_and_set;
    prop_mapping_equivalent;
    prop_mapping_widths_legal ]
