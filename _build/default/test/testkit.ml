(* Shared helpers for the test suite: random circuit generation for
   property tests, truth-table equivalence oracles, float comparison. *)

module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_approx ?(eps = 1e-9) msg expected actual =
  if not (approx ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g (eps %g)" msg expected actual eps

(* QCheck generator for small random netlists with inverters: [n_inputs]
   inputs, up to [max_gates] gates over AND/OR/NOT/XOR, 1–3 outputs. Kept
   raw (no structural hashing) so optimization passes have work to do. *)
let gen_netlist ?(n_inputs = 5) ?(max_gates = 12) () =
  let open QCheck2.Gen in
  let* n_gates = int_range 1 max_gates in
  let* n_outputs = int_range 1 3 in
  let* seeds = list_repeat (n_gates * 6) (int_bound 1_000_000) in
  let* out_seeds = list_repeat n_outputs (int_bound 1_000_000) in
  return (n_gates, n_outputs, Array.of_list seeds, Array.of_list out_seeds, n_inputs)

let build_netlist (n_gates, n_outputs, seeds, out_seeds, n_inputs) =
  let t = Netlist.create ~name:"random" () in
  let inputs = Array.init n_inputs (fun k -> Netlist.add_input ~name:(Printf.sprintf "i%d" k) t) in
  ignore inputs;
  let cursor = ref 0 in
  let next () =
    let v = seeds.(!cursor mod Array.length seeds) in
    incr cursor;
    v
  in
  for _ = 1 to n_gates do
    let avail = Netlist.size t in
    let pick () = next () mod avail in
    let id =
      match next () mod 5 with
      | 0 -> Netlist.add_gate t (Gate.Not (pick ()))
      | 1 -> Netlist.add_gate t (Gate.Xor (pick (), pick ()))
      | 2 -> Netlist.add_gate t (Gate.And [| pick (); pick () |])
      | 3 -> Netlist.add_gate t (Gate.Or [| pick (); pick (); pick () |])
      | _ -> Netlist.add_gate t (Gate.And [| pick (); pick (); pick () |])
    in
    ignore id
  done;
  Array.iteri
    (fun k seed -> Netlist.add_output t (Printf.sprintf "o%d" k) (seed mod Netlist.size t))
    (Array.sub out_seeds 0 n_outputs);
  t

let arbitrary_netlist ?n_inputs ?max_gates () =
  QCheck2.Gen.map build_netlist (gen_netlist ?n_inputs ?max_gates ())

(* Truth-table equivalence of two functions from input vectors to output
   vectors, over all minterms of [n] inputs. *)
let same_function n f g =
  let rec go m =
    if m >= 1 lsl n then true
    else begin
      let vec = Array.init n (fun k -> (m lsr k) land 1 = 1) in
      f vec = g vec && go (m + 1)
    end
  in
  go 0

let qcheck_case ?(count = 100) ~name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let probs_gen n =
  QCheck2.Gen.(map Array.of_list (list_repeat n (float_bound_inclusive 1.0)))
