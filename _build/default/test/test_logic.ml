module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Topo = Dpa_logic.Topo
module Cone = Dpa_logic.Cone
module Eval = Dpa_logic.Eval
module Builder = Dpa_logic.Builder
module Io = Dpa_logic.Io

(* f = (a ∨ b) ∧ ¬c, g = a ⊕ c *)
let small_net () =
  let t = Netlist.create ~name:"small" () in
  let a = Netlist.add_input ~name:"a" t in
  let b = Netlist.add_input ~name:"b" t in
  let c = Netlist.add_input ~name:"c" t in
  let ab = Netlist.add_gate ~name:"ab" t (Gate.Or [| a; b |]) in
  let nc = Netlist.add_gate ~name:"nc" t (Gate.Not c) in
  let f = Netlist.add_gate ~name:"f" t (Gate.And [| ab; nc |]) in
  let g = Netlist.add_gate ~name:"g" t (Gate.Xor (a, c)) in
  Netlist.add_output t "f" f;
  Netlist.add_output t "g" g;
  t

let test_netlist_accessors () =
  let t = small_net () in
  Alcotest.(check int) "size" 7 (Netlist.size t);
  Alcotest.(check int) "inputs" 3 (Netlist.num_inputs t);
  Alcotest.(check int) "outputs" 2 (Netlist.num_outputs t);
  Alcotest.(check int) "gate count" 4 (Netlist.gate_count t);
  Alcotest.(check (option int)) "find f" (Some 5) (Netlist.find_by_name t "f");
  Alcotest.(check bool) "input" true (Netlist.is_input t 0);
  Alcotest.(check bool) "not input" false (Netlist.is_input t 5);
  Alcotest.(check (option string)) "name" (Some "nc") (Netlist.node_name t 4)

let test_netlist_validation () =
  let t = small_net () in
  Alcotest.(check bool) "valid" true (Netlist.validate t = Ok ());
  Alcotest.check_raises "forward fanin"
    (Invalid_argument "Netlist.add_gate: fanin 99 out of range [0,7)") (fun () ->
      ignore (Netlist.add_gate t (Gate.Not 99)))

let test_netlist_output_validation () =
  let t = small_net () in
  Alcotest.check_raises "bad driver"
    (Invalid_argument "Netlist.add_output: driver 42 out of range") (fun () ->
      Netlist.add_output t "bad" 42)

let test_eval () =
  let t = small_net () in
  (* a=1 b=0 c=0: f = (1∨0)∧¬0 = 1, g = 1⊕0 = 1 *)
  Alcotest.(check (array bool)) "101 case" [| true; true |]
    (Eval.outputs t [| true; false; false |]);
  (* a=0 b=0 c=1: f = 0, g = 1 *)
  Alcotest.(check (array bool)) "001 case" [| false; true |]
    (Eval.outputs t [| false; false; true |])

let test_eval_table () =
  let t = small_net () in
  let table = Eval.output_table t in
  Alcotest.(check int) "8 rows" 8 (Array.length table);
  (* row 5 = a=1,b=0,c=1 (input 0 is LSB): f = 0, g = 0 *)
  Alcotest.(check (array bool)) "row 5" [| false; false |] table.(5)

let test_exact_probabilities () =
  let t = small_net () in
  let probs = Eval.exact_probabilities t [| 0.5; 0.5; 0.5 |] in
  (* P(f) = P(a∨b)·P(¬c) = 0.75 · 0.5 *)
  Testkit.check_approx "P(f)" 0.375 probs.(5);
  Testkit.check_approx "P(g)" 0.5 probs.(6)

let test_levels_and_fanouts () =
  let t = small_net () in
  let lv = Topo.levels t in
  Alcotest.(check int) "input level" 0 lv.(0);
  Alcotest.(check int) "or level" 1 lv.(3);
  Alcotest.(check int) "and level" 2 lv.(5);
  Alcotest.(check int) "max level" 2 (Topo.max_level t);
  let fo = Topo.fanout_counts t in
  Alcotest.(check int) "a feeds or+xor" 2 fo.(0);
  let lists = Topo.fanouts t in
  Alcotest.(check (array int)) "a fanouts" [| 3; 6 |] lists.(0)

let test_fanout_cone_sizes () =
  let t = small_net () in
  let sizes = Topo.fanout_cone_sizes t in
  (* a → {ab, f, g} *)
  Alcotest.(check int) "a cone" 3 sizes.(0);
  Alcotest.(check int) "f cone" 0 sizes.(5)

let test_cones () =
  let t = small_net () in
  let cones = Cone.of_outputs t in
  Alcotest.(check int) "two cones" 2 (Array.length cones);
  (* f's cone: a b c ab nc f *)
  Alcotest.(check (list int)) "f cone" [ 0; 1; 2; 3; 4; 5 ]
    (Dpa_util.Bitset.elements cones.(0));
  Alcotest.(check (list int)) "g cone" [ 0; 2; 6 ] (Dpa_util.Bitset.elements cones.(1));
  (* overlap = |{a,c}| / (6 + 3) *)
  Testkit.check_approx "overlap" (2.0 /. 9.0) (Cone.overlap cones.(0) cones.(1));
  Alcotest.(check (array int)) "support f" [| 0; 1; 2 |] (Cone.support t 5)

let test_gate_traversal_levels_ascend () =
  let t = small_net () in
  let order = Topo.gate_traversal t in
  let lv = Topo.levels t in
  let ok = ref true in
  for k = 0 to Array.length order - 2 do
    if lv.(order.(k)) > lv.(order.(k + 1)) then ok := false
  done;
  Alcotest.(check bool) "levels ascend" true !ok

let test_builder_sharing () =
  let b = Builder.create () in
  let x = Builder.input ~name:"x" b in
  let y = Builder.input ~name:"y" b in
  let g1 = Builder.and_ b [ x; y ] in
  let g2 = Builder.and_ b [ y; x ] in
  Alcotest.(check int) "commutative sharing" g1 g2;
  let g3 = Builder.and_ b [ x; x; y ] in
  Alcotest.(check int) "duplicate operand collapses" g1 g3

let test_builder_constants () =
  let b = Builder.create () in
  let x = Builder.input b in
  let t1 = Builder.const b true in
  Alcotest.(check int) "and with true" x (Builder.and_ b [ x; t1 ]);
  let f1 = Builder.const b false in
  Alcotest.(check int) "or with false" x (Builder.or_ b [ x; f1 ]);
  Alcotest.(check int) "and with false" f1 (Builder.and_ b [ x; f1 ]);
  let nx = Builder.not_ b x in
  Alcotest.(check int) "complement kills and" f1 (Builder.and_ b [ x; nx ]);
  Alcotest.(check int) "double negation" x (Builder.not_ b nx)

let test_builder_xor () =
  let b = Builder.create () in
  let x = Builder.input b in
  let y = Builder.input b in
  Alcotest.(check int) "x xor x = 0" (Builder.const b false) (Builder.xor_ b x x);
  Alcotest.(check int) "x xor ¬x = 1" (Builder.const b true) (Builder.xor_ b x (Builder.not_ b x));
  Alcotest.(check int) "x xor 0 = x" x (Builder.xor_ b x (Builder.const b false));
  Alcotest.(check int) "x xor 1 = ¬x" (Builder.not_ b x) (Builder.xor_ b x (Builder.const b true));
  let g1 = Builder.xor_ b x y and g2 = Builder.xor_ b y x in
  Alcotest.(check int) "xor commutative sharing" g1 g2

let test_io_roundtrip () =
  let t = small_net () in
  let text = Io.to_string t in
  let t' = Io.parse_exn text in
  Alcotest.(check int) "inputs preserved" (Netlist.num_inputs t) (Netlist.num_inputs t');
  Alcotest.(check int) "outputs preserved" (Netlist.num_outputs t) (Netlist.num_outputs t');
  let same =
    Testkit.same_function 3 (fun v -> Array.to_list (Eval.outputs t v))
      (fun v -> Array.to_list (Eval.outputs t' v))
  in
  Alcotest.(check bool) "same function" true same

let test_io_parse_errors () =
  (match Io.of_string "f = and a b\n.outputs f\n.end\n" with
  | Error msg -> Alcotest.(check bool) "unknown signal" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected parse error");
  match Io.of_string ".inputs a\n" with
  | Error msg ->
    Alcotest.(check string) "missing outputs" "missing .outputs declaration" msg
  | Ok _ -> Alcotest.fail "expected missing-outputs error"

let test_io_comments_and_names () =
  let text = ".model demo # a comment\n.inputs a b # inputs\nf = and a b\n.outputs f\n.end\n" in
  let t = Io.parse_exn text in
  Alcotest.(check string) "model name" "demo" (Netlist.name t);
  Alcotest.(check (option int)) "named gate" (Some 2) (Netlist.find_by_name t "f")

let test_dot_export () =
  let t = small_net () in
  let dot = Io.to_dot t in
  Alcotest.(check bool) "digraph" true (String.length dot > 20 && String.sub dot 0 7 = "digraph")

(* property: parse(print(net)) preserves the function *)
let prop_io_roundtrip =
  Testkit.qcheck_case ~count:60 ~name:"io roundtrip preserves function"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net' = Io.parse_exn (Io.to_string net) in
      Testkit.same_function (Netlist.num_inputs net)
        (fun v -> Array.to_list (Eval.outputs net v))
        (fun v -> Array.to_list (Eval.outputs net' v)))

(* property: ids are topologically ordered (fanins smaller than gates) *)
let prop_topo_ids =
  Testkit.qcheck_case ~count:60 ~name:"ids are topological"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let ok = ref true in
      Netlist.iter_nodes
        (fun i g -> Array.iter (fun x -> if x >= i then ok := false) (Gate.fanins g))
        net;
      !ok)

(* property: every output cone contains its driver and only reachable ids *)
let prop_cones_sound =
  Testkit.qcheck_case ~count:60 ~name:"cones contain driver and are closed"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let cones = Cone.of_outputs net in
      let outs = Netlist.outputs net in
      Array.for_all2
        (fun (_, d) cone ->
          Dpa_util.Bitset.mem cone d
          && List.for_all
               (fun i ->
                 Array.for_all (fun x -> Dpa_util.Bitset.mem cone x) (Netlist.fanins net i))
               (Dpa_util.Bitset.elements cone))
        outs cones)

let test_netstats () =
  let t = small_net () in
  let s = Dpa_logic.Netstats.compute t in
  Alcotest.(check int) "inputs" 3 s.Dpa_logic.Netstats.inputs;
  Alcotest.(check int) "outputs" 2 s.Dpa_logic.Netstats.outputs;
  Alcotest.(check int) "gates" 4 s.Dpa_logic.Netstats.gates;
  Alcotest.(check int) "depth" 2 s.Dpa_logic.Netstats.max_depth;
  Alcotest.(check int) "no dead gates" 0 s.Dpa_logic.Netstats.dead_gates;
  Alcotest.(check int) "no unused inputs" 0 s.Dpa_logic.Netstats.unused_inputs;
  Alcotest.(check (list (pair string int))) "histogram"
    [ ("and2", 1); ("not", 1); ("or2", 1); ("xor", 1) ]
    (List.sort compare s.Dpa_logic.Netstats.gate_histogram);
  Alcotest.(check bool) "render" true
    (Testkit.contains_substring
       (Dpa_logic.Netstats.to_string s)
       "3 inputs (0 unused)")

let test_netstats_dead_and_unused () =
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  let _unused = Netlist.add_input t in
  let live = Netlist.add_gate t (Gate.Not a) in
  let _dead = Netlist.add_gate t (Gate.And [| a; live |]) in
  Netlist.add_output t "f" live;
  let s = Dpa_logic.Netstats.compute t in
  Alcotest.(check int) "unused input" 1 s.Dpa_logic.Netstats.unused_inputs;
  Alcotest.(check int) "dead gate" 1 s.Dpa_logic.Netstats.dead_gates

let suite =
  [ Alcotest.test_case "netlist accessors" `Quick test_netlist_accessors;
    Alcotest.test_case "netstats" `Quick test_netstats;
    Alcotest.test_case "netstats dead/unused" `Quick test_netstats_dead_and_unused;
    Alcotest.test_case "netlist validation" `Quick test_netlist_validation;
    Alcotest.test_case "output validation" `Quick test_netlist_output_validation;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "truth table" `Quick test_eval_table;
    Alcotest.test_case "exact probabilities" `Quick test_exact_probabilities;
    Alcotest.test_case "levels and fanouts" `Quick test_levels_and_fanouts;
    Alcotest.test_case "fanout cone sizes" `Quick test_fanout_cone_sizes;
    Alcotest.test_case "cones and overlap" `Quick test_cones;
    Alcotest.test_case "gate traversal ascends" `Quick test_gate_traversal_levels_ascend;
    Alcotest.test_case "builder sharing" `Quick test_builder_sharing;
    Alcotest.test_case "builder constants" `Quick test_builder_constants;
    Alcotest.test_case "builder xor" `Quick test_builder_xor;
    Alcotest.test_case "io roundtrip" `Quick test_io_roundtrip;
    Alcotest.test_case "io parse errors" `Quick test_io_parse_errors;
    Alcotest.test_case "io comments/names" `Quick test_io_comments_and_names;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    prop_io_roundtrip;
    prop_topo_ids;
    prop_cones_sound ]
