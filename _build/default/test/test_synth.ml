module Netlist = Dpa_logic.Netlist
module Gate = Dpa_logic.Gate
module Eval = Dpa_logic.Eval
module Opt = Dpa_synth.Opt
module Phase = Dpa_synth.Phase
module Inverterless = Dpa_synth.Inverterless
module Min_area = Dpa_synth.Min_area

let test_phase_helpers () =
  let a = Phase.all_positive 3 in
  Alcotest.(check string) "all positive" "+++" (Phase.to_string a);
  let b = Phase.flip_at a 1 in
  Alcotest.(check string) "flip" "+-+" (Phase.to_string b);
  Alcotest.(check int) "count" 1 (Phase.count_negative b);
  Alcotest.(check int) "roundtrip" 2 (Phase.to_int b);
  Alcotest.(check string) "of_int" "+-+" (Phase.to_string (Phase.of_int ~num_outputs:3 2));
  Alcotest.(check int) "enumerate" 8 (List.length (List.of_seq (Phase.enumerate ~num_outputs:3)));
  Alcotest.(check bool) "flip involutive" true (Phase.equal a (Phase.flip_at b 1))

let test_phase_enumerate_limit () =
  Alcotest.check_raises "limit"
    (Invalid_argument "Phase.enumerate: more than 24 outputs is not enumerable") (fun () ->
      let (_ : Phase.assignment Seq.t) = Phase.enumerate ~num_outputs:25 in
      ())

let test_optimize_removes_double_inverters () =
  let t = Netlist.create () in
  let a = Netlist.add_input ~name:"a" t in
  let n1 = Netlist.add_gate t (Gate.Not a) in
  let n2 = Netlist.add_gate t (Gate.Not n1) in
  let n3 = Netlist.add_gate t (Gate.Not n2) in
  Netlist.add_output t "f" n3;
  let o = Opt.optimize t in
  (* ¬¬¬a = ¬a: one inverter *)
  Alcotest.(check int) "one gate" 1 (Netlist.gate_count o)

let test_optimize_decomposes_xor () =
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let x = Netlist.add_gate t (Gate.Xor (a, b)) in
  Netlist.add_output t "f" x;
  Alcotest.(check bool) "raw not ready" false (Opt.is_domino_ready t);
  let o = Opt.optimize t in
  Alcotest.(check bool) "decomposed ready" true (Opt.is_domino_ready o);
  let same =
    Testkit.same_function 2
      (fun v -> Array.to_list (Eval.outputs t v))
      (fun v -> Array.to_list (Eval.outputs o v))
  in
  Alcotest.(check bool) "function preserved" true same

let test_optimize_preserves_interface () =
  let t = Netlist.create () in
  let a = Netlist.add_input ~name:"a" t in
  let _unused = Netlist.add_input ~name:"unused" t in
  Netlist.add_output t "f" a;
  let o = Opt.optimize t in
  Alcotest.(check int) "inputs kept" 2 (Netlist.num_inputs o);
  Alcotest.(check (option string)) "name kept" (Some "unused")
    (Netlist.node_name o (Netlist.inputs o).(1))

(* property: optimize preserves functionality *)
let prop_optimize_preserves =
  Testkit.qcheck_case ~count:120 ~name:"optimize preserves function"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let o = Opt.optimize net in
      Testkit.same_function (Netlist.num_inputs net)
        (fun v -> Array.to_list (Eval.outputs net v))
        (fun v -> Array.to_list (Eval.outputs o v)))

(* property: optimize never grows XOR-free networks *)
let prop_optimize_shrinks =
  Testkit.qcheck_case ~count:120 ~name:"optimize never grows xor-free nets"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let has_xor = ref false in
      Netlist.iter_nodes
        (fun _ g ->
          match g with
          | Gate.Xor _ -> has_xor := true
          | Gate.Input | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.And _ | Gate.Or _ -> ())
        net;
      (* xor decomposition may add gates by design *)
      !has_xor || Netlist.gate_count (Opt.optimize net) <= Netlist.gate_count net)

let fig5_opt () = Opt.optimize (Dpa_workload.Examples.fig5 ())

let test_inverterless_block_is_monotone () =
  let net = fig5_opt () in
  Seq.iter
    (fun assignment ->
      let inv = Inverterless.realize net assignment in
      let blk = Inverterless.block inv in
      Netlist.iter_nodes
        (fun _ g ->
          match g with
          | Gate.Not _ | Gate.Buf _ | Gate.Xor _ ->
            Alcotest.failf "non-monotone gate in block for %s" (Phase.to_string assignment)
          | Gate.Input | Gate.Const _ | Gate.And _ | Gate.Or _ -> ())
        blk)
    (Phase.enumerate ~num_outputs:2)

let test_inverterless_fig5_stats () =
  let net = fig5_opt () in
  (* realization 1: f negative, g positive — 4 shared gates, no input
     inverters, one output inverter (paper Fig. 5 left) *)
  let s1 = Inverterless.stats (Inverterless.realize net [| Phase.Negative; Phase.Positive |]) in
  Alcotest.(check int) "r1 gates" 4 s1.Inverterless.domino_gates;
  Alcotest.(check int) "r1 in-inv" 0 s1.Inverterless.input_inverters;
  Alcotest.(check int) "r1 out-inv" 1 s1.Inverterless.output_inverters;
  Alcotest.(check int) "r1 dup" 0 s1.Inverterless.duplicated_nodes;
  (* realization 2: f positive, g negative — 4 dual gates, 4 input
     inverters, one output inverter (paper Fig. 5 right) *)
  let s2 = Inverterless.stats (Inverterless.realize net [| Phase.Positive; Phase.Negative |]) in
  Alcotest.(check int) "r2 gates" 4 s2.Inverterless.domino_gates;
  Alcotest.(check int) "r2 in-inv" 4 s2.Inverterless.input_inverters;
  Alcotest.(check int) "r2 out-inv" 1 s2.Inverterless.output_inverters

let test_inverterless_duplication () =
  (* f = a∧b shared with g = ¬(a∧b): opposite demands trap the AND *)
  let t = Netlist.create () in
  let a = Netlist.add_input ~name:"a" t in
  let b = Netlist.add_input ~name:"b" t in
  let ab = Netlist.add_gate t (Gate.And [| a; b |]) in
  let nab = Netlist.add_gate t (Gate.Not ab) in
  Netlist.add_output t "f" ab;
  Netlist.add_output t "g" nab;
  let s = Inverterless.stats (Inverterless.realize t [| Phase.Positive; Phase.Positive |]) in
  (* f wants (ab, Pos); g positive wants ¬(ab) = (ab, Neg): both polarities *)
  Alcotest.(check int) "duplicated" 1 s.Inverterless.duplicated_nodes;
  Alcotest.(check int) "two gates" 2 s.Inverterless.domino_gates;
  (* with g negative, the block computes ab for both outputs: no dup *)
  let s' = Inverterless.stats (Inverterless.realize t [| Phase.Positive; Phase.Negative |]) in
  Alcotest.(check int) "no dup" 0 s'.Inverterless.duplicated_nodes;
  Alcotest.(check int) "one gate" 1 s'.Inverterless.domino_gates

let test_inverterless_literals () =
  let net = fig5_opt () in
  let inv = Inverterless.realize net [| Phase.Positive; Phase.Negative |] in
  let lits = Inverterless.literals inv in
  (* realization 2 uses only complemented literals *)
  Alcotest.(check bool) "all negative" true
    (Array.for_all (fun (_, pol) -> pol = Inverterless.Neg) lits);
  Alcotest.(check bool) "literal lookup" true
    (Inverterless.block_literal inv ~pi_position:0 Inverterless.Neg <> None);
  Alcotest.(check (option int)) "absent literal" None
    (Inverterless.block_literal inv ~pi_position:0 Inverterless.Pos)

let test_inverterless_origin_tracking () =
  let net = fig5_opt () in
  let inv = Inverterless.realize net (Phase.all_positive 2) in
  let blk = Inverterless.block inv in
  let tracked = ref 0 in
  Netlist.iter_nodes
    (fun i g ->
      match g with
      | Gate.And _ | Gate.Or _ ->
        (match Inverterless.original_of_block_node inv i with
        | Some (_, _) -> incr tracked
        | None -> Alcotest.fail "untracked block gate")
      | Gate.Input | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.Xor _ -> ())
    blk;
  Alcotest.(check bool) "gates tracked" true (!tracked > 0)

(* property: the inverterless realization computes the original outputs
   under every phase assignment (for up to 3 outputs, all assignments) *)
let prop_inverterless_equivalent =
  Testkit.qcheck_case ~count:100 ~name:"inverterless preserves function for all phases"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Opt.optimize net in
      let n_po = Netlist.num_outputs net in
      Seq.for_all
        (fun assignment ->
          let inv = Inverterless.realize net assignment in
          Testkit.same_function (Netlist.num_inputs net)
            (fun v -> Array.to_list (Eval.outputs net v))
            (fun v -> Array.to_list (Inverterless.eval_original_outputs inv v)))
        (Phase.enumerate ~num_outputs:n_po))

(* property: flipping every phase costs at most the boundary inverters of
   a fully dual realization — area is assignment-dependent but bounded *)
let prop_inverterless_area_positive =
  Testkit.qcheck_case ~count:100 ~name:"inverterless area sane"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Opt.optimize net in
      let a = Phase.all_positive (Netlist.num_outputs net) in
      let s = Inverterless.stats (Inverterless.realize net a) in
      s.Inverterless.area
      = s.Inverterless.domino_gates + s.Inverterless.input_inverters
        + s.Inverterless.output_inverters
      && s.Inverterless.area >= 0)

let test_resynth_two_level () =
  let net = fig5_opt () in
  let net', stats = Dpa_synth.Resynth.two_level net in
  Alcotest.(check int) "both outputs collapsed" 2 stats.Dpa_synth.Resynth.collapsed_outputs;
  Alcotest.(check int) "none kept" 0 stats.Dpa_synth.Resynth.kept_outputs;
  Alcotest.(check bool) "domino ready" true (Opt.is_domino_ready net');
  let same =
    Testkit.same_function 4
      (fun v -> Array.to_list (Eval.outputs net v))
      (fun v -> Array.to_list (Eval.outputs net' v))
  in
  Alcotest.(check bool) "function preserved" true same;
  (* the result is two-level: depth at most 3 (inverter, AND, OR) *)
  Alcotest.(check bool) "flattened" true (Dpa_logic.Topo.max_level net' <= 3)

let test_resynth_respects_support_limit () =
  let t = Netlist.create () in
  let xs = Array.init 6 (fun _ -> Netlist.add_input t) in
  let wide = Netlist.add_gate t (Gate.And xs) in
  let narrow = Netlist.add_gate t (Gate.Or [| xs.(0); xs.(1) |]) in
  Netlist.add_output t "wide" wide;
  Netlist.add_output t "narrow" narrow;
  let _, stats = Dpa_synth.Resynth.two_level ~max_support:3 t in
  Alcotest.(check int) "one collapsed" 1 stats.Dpa_synth.Resynth.collapsed_outputs;
  Alcotest.(check int) "one kept" 1 stats.Dpa_synth.Resynth.kept_outputs

(* property: two-level resynthesis preserves functionality *)
let prop_resynth_preserves =
  Testkit.qcheck_case ~count:80 ~name:"resynthesis preserves function"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net', _ = Dpa_synth.Resynth.two_level net in
      Testkit.same_function (Netlist.num_inputs net)
        (fun v -> Array.to_list (Eval.outputs net v))
        (fun v -> Array.to_list (Eval.outputs net' v)))

module Factor = Dpa_synth.Factor

let lit input positive = { Factor.input; positive }

let test_factor_basics () =
  Alcotest.(check int) "empty = const false" 0
    (Factor.literal_count (Factor.factor []));
  (match Factor.factor [] with
  | Factor.Const false -> ()
  | _ -> Alcotest.fail "empty cover is false");
  (match Factor.factor [ [] ] with
  | Factor.Const true -> ()
  | _ -> Alcotest.fail "tautology cube is true");
  (match Factor.factor [ [ lit 0 true ] ] with
  | Factor.Lit { Factor.input = 0; positive = true } -> ()
  | _ -> Alcotest.fail "single literal")

let test_factor_extracts_sharing () =
  (* ab + ac + ad = a(b + c + d): 6 literals flat, 4 factored *)
  let cover = [ [ lit 0 true; lit 1 true ]; [ lit 0 true; lit 2 true ];
                [ lit 0 true; lit 3 true ] ] in
  let form = Factor.factor cover in
  Alcotest.(check int) "flat literals" 6 (Factor.sop_literal_count cover);
  Alcotest.(check int) "factored literals" 4 (Factor.literal_count form);
  (* semantics preserved over all 16 assignments *)
  for m = 0 to 15 do
    let lookup i = (m lsr i) land 1 = 1 in
    let sop_value =
      List.exists
        (fun cube ->
          List.for_all
            (fun { Factor.input; positive } -> lookup input = positive)
            cube)
        cover
    in
    Alcotest.(check bool) "same value" sop_value (Factor.eval form lookup)
  done

let test_factor_common_cube_divisor () =
  (* abc + abd = ab(c + d): 6 flat, 4 factored — needs the common-cube
     extension, not just the single literal *)
  let cover = [ [ lit 0 true; lit 1 true; lit 2 true ];
                [ lit 0 true; lit 1 true; lit 3 true ] ] in
  let form = Factor.factor cover in
  Alcotest.(check int) "factored literals" 4 (Factor.literal_count form)

(* property: factoring preserves the ISOP function and never increases
   literals, through the whole resynthesis pipeline *)
let prop_factored_resynth_preserves =
  Testkit.qcheck_case ~count:80 ~name:"factored resynthesis preserves function"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net', _ = Dpa_synth.Resynth.factored net in
      Testkit.same_function (Netlist.num_inputs net)
        (fun v -> Array.to_list (Eval.outputs net v))
        (fun v -> Array.to_list (Eval.outputs net' v)))

let prop_factoring_never_more_literals =
  Testkit.qcheck_case ~count:80 ~name:"factoring never adds literals"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let _, flat = Dpa_synth.Resynth.two_level net in
      let _, fact = Dpa_synth.Resynth.factored net in
      fact.Dpa_synth.Resynth.literals <= flat.Dpa_synth.Resynth.literals)

let test_min_area_exhaustive_optimal () =
  let net = fig5_opt () in
  let best = Min_area.exhaustive net in
  let best_area = Min_area.area_of net best in
  Seq.iter
    (fun a ->
      Alcotest.(check bool) "no better assignment" true (Min_area.area_of net a >= best_area))
    (Phase.enumerate ~num_outputs:2)

let test_min_area_local_search_no_worse_than_start () =
  let net = fig5_opt () in
  let start = Phase.all_positive 2 in
  let final = Min_area.local_search ~start net in
  Alcotest.(check bool) "local search improves or stays" true
    (Min_area.area_of net final <= Min_area.area_of net start)

(* property: local search result is a local minimum under single flips *)
let prop_min_area_local_minimum =
  Testkit.qcheck_case ~count:40 ~name:"min-area local search reaches a local minimum"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Opt.optimize net in
      let a = Min_area.local_search net in
      let area = Min_area.area_of net a in
      let n = Netlist.num_outputs net in
      let rec ok k =
        k >= n || (Min_area.area_of net (Phase.flip_at a k) >= area && ok (k + 1))
      in
      ok 0)

let suite =
  [ Alcotest.test_case "phase helpers" `Quick test_phase_helpers;
    Alcotest.test_case "phase enumerate limit" `Quick test_phase_enumerate_limit;
    Alcotest.test_case "optimize double inverters" `Quick test_optimize_removes_double_inverters;
    Alcotest.test_case "optimize xor decomposition" `Quick test_optimize_decomposes_xor;
    Alcotest.test_case "optimize keeps interface" `Quick test_optimize_preserves_interface;
    Alcotest.test_case "inverterless monotone" `Quick test_inverterless_block_is_monotone;
    Alcotest.test_case "inverterless fig5 stats" `Quick test_inverterless_fig5_stats;
    Alcotest.test_case "inverterless duplication" `Quick test_inverterless_duplication;
    Alcotest.test_case "inverterless literals" `Quick test_inverterless_literals;
    Alcotest.test_case "inverterless origins" `Quick test_inverterless_origin_tracking;
    Alcotest.test_case "factor basics" `Quick test_factor_basics;
    Alcotest.test_case "factor extracts sharing" `Quick test_factor_extracts_sharing;
    Alcotest.test_case "factor common cube" `Quick test_factor_common_cube_divisor;
    prop_factored_resynth_preserves;
    prop_factoring_never_more_literals;
    Alcotest.test_case "resynth two-level" `Quick test_resynth_two_level;
    Alcotest.test_case "resynth support limit" `Quick test_resynth_respects_support_limit;
    prop_resynth_preserves;
    Alcotest.test_case "min-area exhaustive optimal" `Quick test_min_area_exhaustive_optimal;
    Alcotest.test_case "min-area local search" `Quick test_min_area_local_search_no_worse_than_start;
    prop_optimize_preserves;
    prop_optimize_shrinks;
    prop_inverterless_equivalent;
    prop_inverterless_area_positive;
    prop_min_area_local_minimum ]
