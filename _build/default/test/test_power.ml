module Model = Dpa_power.Model
module Estimate = Dpa_power.Estimate
module Netlist = Dpa_logic.Netlist
module Phase = Dpa_synth.Phase
module Inverterless = Dpa_synth.Inverterless
module Mapped = Dpa_domino.Mapped

let test_model_fig2 () =
  (* Property 2.1: domino switching equals signal probability *)
  Testkit.check_approx "domino 0" 0.0 (Model.domino_switching 0.0);
  Testkit.check_approx "domino .3" 0.3 (Model.domino_switching 0.3);
  Testkit.check_approx "domino 1" 1.0 (Model.domino_switching 1.0);
  (* static parabola peaks at 1/2 *)
  Testkit.check_approx "static 0" 0.0 (Model.static_switching 0.0);
  Testkit.check_approx "static .5" 0.5 (Model.static_switching 0.5);
  Testkit.check_approx "static 1" 0.0 (Model.static_switching 1.0);
  Testkit.check_approx "static .9" 0.18 (Model.static_switching 0.9);
  Testkit.check_approx "inverter after domino" 0.42 (Model.inverter_after_domino 0.42)

let test_model_bounds () =
  Alcotest.check_raises "negative prob"
    (Invalid_argument "Power.Model: probability -0.1 outside [0,1]") (fun () ->
      ignore (Model.domino_switching (-0.1)))

let test_fig2_points () =
  let pts = Model.fig2_points () in
  Alcotest.(check int) "21 points" 21 (List.length pts);
  (* domino exceeds static for p > 1/2, static exceeds domino for p < 1/2 *)
  List.iter
    (fun (p, dom, sta) ->
      if p > 0.5 +. 1e-9 then Alcotest.(check bool) "domino worse above 1/2" true (dom > sta);
      if p < 0.5 -. 1e-9 && p > 1e-9 then
        Alcotest.(check bool) "static worse below 1/2" true (sta > dom))
    pts

let fig5_mapped assignment =
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig5 ()) in
  Mapped.map (Inverterless.realize net assignment)

let test_fig5_realization1 () =
  let mapped = fig5_mapped [| Phase.Negative; Phase.Positive |] in
  let r = Estimate.of_mapped ~input_probs:(Array.make 4 0.9) mapped in
  Testkit.check_approx ~eps:1e-6 "domino block" 3.6 r.Estimate.domino_switching;
  Testkit.check_approx ~eps:1e-6 "input inverters" 0.0 r.Estimate.input_inverter_power;
  Testkit.check_approx ~eps:1e-6 "output inverters" 0.8019 r.Estimate.output_inverter_power;
  Testkit.check_approx ~eps:1e-6 "total" 4.4019 r.Estimate.total

let test_fig5_realization2 () =
  let mapped = fig5_mapped [| Phase.Positive; Phase.Negative |] in
  let r = Estimate.of_mapped ~input_probs:(Array.make 4 0.9) mapped in
  Testkit.check_approx ~eps:1e-6 "domino block" 0.4 r.Estimate.domino_switching;
  Testkit.check_approx ~eps:1e-6 "input inverters" 0.72 r.Estimate.input_inverter_power;
  Testkit.check_approx ~eps:1e-6 "output inverters" 0.0019 r.Estimate.output_inverter_power;
  Testkit.check_approx ~eps:1e-6 "total" 1.1219 r.Estimate.total

let test_fig5_percentage () =
  (* "the second realization has 75% fewer transitions" *)
  let r1 = Estimate.of_mapped ~input_probs:(Array.make 4 0.9)
      (fig5_mapped [| Phase.Negative; Phase.Positive |]) in
  let r2 = Estimate.of_mapped ~input_probs:(Array.make 4 0.9)
      (fig5_mapped [| Phase.Positive; Phase.Negative |]) in
  let saving = (r1.Estimate.total -. r2.Estimate.total) /. r1.Estimate.total in
  Alcotest.(check bool) "≈75% fewer" true (saving > 0.72 && saving < 0.78)

let test_shared_variable_correctness () =
  (* f = a∧¬a-style reconvergence through both literals must use one BDD
     variable: g = a ∨ ¬a should cost probability 1 exactly *)
  let t = Netlist.create () in
  let a = Netlist.add_input ~name:"a" t in
  let na = Netlist.add_gate t (Dpa_logic.Gate.Not a) in
  let g = Netlist.add_gate t (Dpa_logic.Gate.Or [| a; na |]) in
  Netlist.add_output t "g" g;
  let mapped = Mapped.map (Inverterless.realize t [| Phase.Positive |]) in
  let probs = Estimate.probabilities_of_block ~input_probs:[| 0.3 |] mapped in
  let _, driver = (Netlist.outputs (Mapped.net mapped)).(0) in
  Testkit.check_approx "tautology has probability 1" 1.0 probs.(driver)

(* property: the BDD estimate of every block node matches brute-force
   enumeration of the block over the original inputs *)
let prop_block_probs_exact =
  Testkit.qcheck_case ~count:50 ~name:"block probabilities exact"
    QCheck2.Gen.(pair (Testkit.arbitrary_netlist ()) (Testkit.probs_gen 5))
    (fun (net, input_probs) ->
      let net = Dpa_synth.Opt.optimize net in
      let a = Phase.all_positive (Netlist.num_outputs net) in
      let mapped = Mapped.map (Inverterless.realize net a) in
      let probs = Estimate.probabilities_of_block ~input_probs mapped in
      (* brute force over original inputs *)
      let blk = Mapped.net mapped in
      let lits = Mapped.literals mapped in
      let n = Netlist.num_inputs net in
      let expect = Array.make (Netlist.size blk) 0.0 in
      for m = 0 to (1 lsl n) - 1 do
        let vec = Array.init n (fun k -> (m lsr k) land 1 = 1) in
        let w = ref 1.0 in
        Array.iteri
          (fun k b -> w := !w *. (if b then input_probs.(k) else 1.0 -. input_probs.(k)))
          vec;
        let lit_vec =
          Array.map
            (fun (pos, pol) ->
              match pol with Inverterless.Pos -> vec.(pos) | Inverterless.Neg -> not vec.(pos))
            lits
        in
        let values = Dpa_logic.Eval.all_nodes blk lit_vec in
        Array.iteri (fun i v -> if v then expect.(i) <- expect.(i) +. !w) values
      done;
      let ok = ref true in
      Array.iteri
        (fun i e -> if not (Testkit.approx ~eps:1e-9 e probs.(i)) then ok := false)
        expect;
      !ok)

(* property: power total is the sum of its reported components *)
let prop_total_is_sum =
  Testkit.qcheck_case ~count:60 ~name:"power total = components"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Dpa_synth.Opt.optimize net in
      let a = Phase.all_positive (Netlist.num_outputs net) in
      let mapped = Mapped.map (Inverterless.realize net a) in
      let r = Estimate.of_mapped ~input_probs:(Array.make (Netlist.num_inputs net) 0.5) mapped in
      Testkit.approx ~eps:1e-9
        (r.Estimate.domino_power +. r.Estimate.input_inverter_power
        +. r.Estimate.output_inverter_power)
        r.Estimate.total)

(* property: with unit caps and zero penalties, domino power equals total
   switching activity *)
let prop_unit_pricing =
  Testkit.qcheck_case ~count:60 ~name:"P=0,C=1 means power = switching"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Dpa_synth.Opt.optimize net in
      let a = Phase.all_positive (Netlist.num_outputs net) in
      let mapped = Mapped.map (Inverterless.realize net a) in
      let r = Estimate.of_mapped ~input_probs:(Array.make (Netlist.num_inputs net) 0.5) mapped in
      Testkit.approx ~eps:1e-9 r.Estimate.domino_switching r.Estimate.domino_power)

(* property: the per-cell-type breakdown partitions the total exactly *)
let prop_by_cell_type_partitions_total =
  Testkit.qcheck_case ~count:60 ~name:"cell-type breakdown sums to total"
    (Testkit.arbitrary_netlist ())
    (fun net ->
      let net = Dpa_synth.Opt.optimize net in
      let n = Netlist.num_inputs net in
      let probs = Array.make n 0.5 in
      let a = Phase.of_int ~num_outputs:(Netlist.num_outputs net) 1 in
      let mapped = Mapped.map (Inverterless.realize net a) in
      let r = Estimate.of_mapped ~input_probs:probs mapped in
      let breakdown =
        Estimate.by_cell_type
          ~input_toggle:(fun pos -> Model.static_switching probs.(pos))
          mapped ~node_probs:r.Estimate.node_probs
      in
      let sum = List.fold_left (fun acc (_, _, p) -> acc +. p) 0.0 breakdown in
      let counted = List.fold_left (fun acc (_, c, _) -> acc + c) 0 breakdown in
      Testkit.approx ~eps:1e-9 sum r.Estimate.total && counted = Mapped.size mapped)

let test_penalty_raises_power () =
  let net = Dpa_synth.Opt.optimize (Dpa_workload.Examples.fig5 ()) in
  let inv = Inverterless.realize net (Phase.all_positive 2) in
  let base = Mapped.map inv in
  let taxed =
    Mapped.map ~library:(Dpa_domino.Library.with_series_penalty Dpa_domino.Library.default) inv
  in
  let probs = Array.make 4 0.5 in
  let r0 = Estimate.of_mapped ~input_probs:probs base in
  let r1 = Estimate.of_mapped ~input_probs:probs taxed in
  Alcotest.(check bool) "penalty increases priced power" true
    (r1.Estimate.domino_power > r0.Estimate.domino_power);
  Testkit.check_approx "switching unchanged" r0.Estimate.domino_switching
    r1.Estimate.domino_switching

let test_static_model_values () =
  (* f = a ∧ b at p = 0.5: P(f) = 0.25, static switching = 2·0.25·0.75 *)
  let t = Netlist.create () in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let f = Netlist.add_gate t (Dpa_logic.Gate.And [| a; b |]) in
  Netlist.add_output t "f" f;
  let r = Dpa_power.Static_model.of_netlist ~input_probs:[| 0.5; 0.5 |] t in
  Alcotest.(check int) "one gate" 1 r.Dpa_power.Static_model.gates;
  Testkit.check_approx "gate switching" 0.375 r.Dpa_power.Static_model.gate_total;
  Testkit.check_approx "per node" 0.375 r.Dpa_power.Static_model.node_switching.(f);
  Testkit.check_approx "inputs zero" 0.0 r.Dpa_power.Static_model.node_switching.(a)

let test_domino_static_ratio () =
  (* the intro claim: domino costs a multiple of static; on mid-probability
     control logic the ratio lands in the 1–4x band *)
  let p =
    { Dpa_workload.Generator.default with
      Dpa_workload.Generator.seed = 5;
      n_inputs = 20;
      n_outputs = 5;
      gates_per_output = 8 }
  in
  let net = Dpa_workload.Generator.combinational p in
  let probs = Array.make 20 0.5 in
  let ratio = Dpa_power.Static_model.domino_to_static_ratio ~input_probs:probs net in
  Alcotest.(check bool) "domino costs more" true (ratio > 1.0);
  Alcotest.(check bool) "within sane band" true (ratio < 10.0)

let suite =
  [ Alcotest.test_case "fig2 model" `Quick test_model_fig2;
    Alcotest.test_case "static model values" `Quick test_static_model_values;
    Alcotest.test_case "domino/static ratio" `Quick test_domino_static_ratio;
    Alcotest.test_case "model bounds" `Quick test_model_bounds;
    Alcotest.test_case "fig2 points" `Quick test_fig2_points;
    Alcotest.test_case "fig5 realization 1" `Quick test_fig5_realization1;
    Alcotest.test_case "fig5 realization 2" `Quick test_fig5_realization2;
    Alcotest.test_case "fig5 75% saving" `Quick test_fig5_percentage;
    Alcotest.test_case "shared literal variable" `Quick test_shared_variable_correctness;
    Alcotest.test_case "penalty pricing" `Quick test_penalty_raises_power;
    prop_by_cell_type_partitions_total;
    prop_block_probs_exact;
    prop_total_is_sum;
    prop_unit_pricing ]
